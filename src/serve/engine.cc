#include "src/serve/engine.h"

#include <algorithm>
#include <iterator>

#include "src/base/faultpoint.h"
#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/img/phash.h"

namespace percival {

namespace {

// Seed for the memo's independent verification hash (any constant works;
// it only has to define a second FNV stream over the pixels).
constexpr uint64_t kVerifyHashSeed = 0x5CA1AB1EULL;

}  // namespace

ServingEngine::ServingEngine(const ServingPolicy& policy)
    : policy_(policy), primary_hash_(&HashBytes) {}

void ServingEngine::SetPolicy(const ServingPolicy& policy) {
  policy_ = policy;
  // A tightened memo cap applies immediately, not at the next insert: the
  // whole point of the cap is a memory bound that holds right now.
  if (policy_.max_memo_entries > 0) {
    while (memo_slots_.size() > policy_.max_memo_entries) {
      MemoEvictOne();
    }
  }
  if (policy_.max_near_dup_entries > 0) {
    while (l2_slots_.size() > policy_.max_near_dup_entries) {
      L2EvictOne();
    }
  }
}

void ServingEngine::SetPrimaryHash(HashFn fn) {
  primary_hash_ = fn != nullptr ? fn : &HashBytes;
}

SubmitOutcome ServingEngine::Submit(const Bitmap& pixels, int64_t now_ns) {
  (void)now_ns;  // Submit itself is untimed today; the parameter keeps the
                 // signature stable for time-aware admission policies.
  SubmitOutcome outcome;
  // Degrade bookkeeping first: every arriving frame advances the self-heal
  // countdown, and the frame that reaches zero is admitted normally again
  // (it is the probe that proves recovery).
  bool shed_uncached = false;
  if (degraded_) {
    ++stats_.degraded_frames;
    if (--frames_until_recovery_ <= 0) {
      degraded_ = false;
      consecutive_misses_ = 0;
      ++stats_.degrade_transitions;
    } else {
      shed_uncached = true;
    }
  }
  const uint64_t key = primary_hash_(pixels.data(), pixels.byte_size());
  const uint64_t verify =
      HashBytesSeeded(pixels.data(), pixels.byte_size(), kVerifyHashSeed);
  auto it = memo_index_.find(key);
  if (it != memo_index_.end()) {
    MemoSlot& slot = memo_slots_[it->second];
    if (slot.verify == verify) {
      ++stats_.cache_hits;
      slot.referenced = true;  // CLOCK recency: a hit defends the slot
      outcome.is_ad = slot.is_ad;
      outcome.disposition = SubmitDisposition::kHitExact;
      return outcome;  // Memoized decision applies immediately — even
                       // degraded, a lookup is always allowed.
    }
    // Same 64-bit hash, different payload: applying the cached decision
    // would block/pass the wrong creative. Count it and classify this frame
    // on its own.
    ++stats_.hash_collisions;
  }
  ++stats_.cache_misses;
  // L2 perceptual probe: an L1 miss can still be a recompressed/resized
  // twin of a memoized creative. Like L1, a lookup is allowed even while
  // degraded — it costs one 8x8 resize plus a popcount scan, no inference.
  uint64_t phash = 0;
  bool has_phash = false;
  if (policy_.near_dup_enabled) {
    phash = AverageHash(pixels);
    has_phash = true;
    const int64_t slot_index = L2Probe(phash);
    if (slot_index >= 0) {
      ++stats_.near_dup_hits;
      const bool is_ad = l2_slots_[static_cast<size_t>(slot_index)].is_ad;
      // Promote the exact hash into L1: the next frame of this exact
      // payload hits L1 and skips the Hamming scan entirely.
      MemoInsert(key, verify, is_ad);
      outcome.is_ad = is_ad;
      outcome.disposition = SubmitDisposition::kHitNearDup;
      return outcome;
    }
    ++stats_.near_dup_rejects;
  }
  // Not yet known: the frame renders now regardless (no added latency);
  // the admission ladder only decides whether classification work is
  // queued for it. Rungs, in order: degraded -> shed; duplicate ->
  // coalesce; queue full (or saturation fault) -> shed; else admit.
  if (shed_uncached) {
    ++stats_.shed;
    outcome.disposition = SubmitDisposition::kShed;
    return outcome;
  }
  const uint64_t flight_key = HashCombine(key, verify);
  if (in_flight_.count(flight_key) != 0) {
    ++stats_.coalesced;  // already queued or mid-drain: ride that work
    outcome.disposition = SubmitDisposition::kCoalesced;
    return outcome;
  }
  if ((policy_.max_pending > 0 && pending_.size() >= policy_.max_pending) ||
      faultpoint::ShouldFire(faultpoint::kQueueSaturate)) {
    ++stats_.shed;  // bounded admission: render unclassified, don't queue
    outcome.disposition = SubmitDisposition::kShed;
    return outcome;
  }
  in_flight_.insert(flight_key);
  PendingFrame frame;
  frame.ticket = flight_key;
  frame.key = key;
  frame.verify = verify;
  frame.phash = phash;
  frame.has_phash = has_phash;
  frame.pixels = nullptr;  // the caller owes ProvidePixels for this ticket
  pending_.push_back(frame);
  outcome.disposition = SubmitDisposition::kAdmitted;
  outcome.ticket = flight_key;
  return outcome;
}

void ServingEngine::ProvidePixels(uint64_t ticket, const Bitmap* pixels) {
  PCHECK(pixels != nullptr);
  // The ticket was just admitted, so it is almost always the back slot.
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    if (it->ticket == ticket) {
      it->pixels = pixels;
      return;
    }
  }
  PCHECK(false && "ProvidePixels: unknown ticket");
}

EngineAction ServingEngine::Step(int64_t now_ns) {
  // The step is also where an expired drain budget takes effect: the
  // unprocessed tail goes back to pending_ and the drain closes.
  MaybeCloseDrain(now_ns);
  if (drain_open_ && drain_cursor_ < drain_.size()) {
    return EngineAction::kRunBatch;
  }
  if (reload_active_ && now_ns >= next_attempt_ns_) {
    return EngineAction::kNeedArtifact;
  }
  if (!decisions_.empty()) {
    return EngineAction::kEmitDecision;
  }
  return EngineAction::kIdle;
}

bool ServingEngine::BeginDrain(int64_t now_ns, double budget_ms) {
  if (drain_open_) {
    return true;  // a drain already open stays open
  }
  if (pending_.empty()) {
    return false;
  }
  // Snapshot-by-swap: frames submitted mid-drain land in the (now empty)
  // pending_ and wait for the next drain. Their in_flight_ keys stay set
  // until CompleteBatch memoizes them, so mid-drain duplicates coalesce.
  drain_.swap(pending_);
  drain_cursor_ = 0;
  batches_started_ = 0;
  outstanding_batches_ = 0;
  drain_start_ns_ = now_ns;
  drain_budget_ms_ = budget_ms >= 0.0 ? budget_ms : policy_.drain_budget_ms;
  drain_open_ = true;
  return true;
}

EngineBatch ServingEngine::BeginBatch(int max_batch) {
  EngineBatch batch;
  if (!drain_open_) {
    return batch;
  }
  // max_batch <= 0 used to make zero-size batches — ceil(n/0) progress,
  // i.e. none, and a caller looping "drain until pending empty" would spin
  // forever. Clamp to one frame per batch (regression-tested).
  const size_t take = std::min(drain_.size() - drain_cursor_,
                               static_cast<size_t>(std::max(max_batch, 1)));
  if (take == 0) {
    return batch;
  }
  batch.images.reserve(take);
  batch.tickets.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    const PendingFrame& frame = drain_[drain_cursor_ + i];
    // An admitted ticket must be backed before its batch begins — the
    // engine stored no pixels of its own (caller-owned buffers).
    PCHECK(frame.pixels != nullptr);
    batch.images.push_back(frame.pixels);
    batch.tickets.push_back(frame.ticket);
    in_drain_.emplace(frame.ticket, frame);
  }
  drain_cursor_ += take;
  ++outstanding_batches_;
  ++batches_started_;
  return batch;
}

void ServingEngine::CompleteBatch(const EngineBatch& batch,
                                  const std::vector<ClassifyResult>& results,
                                  int64_t now_ns) {
  PCHECK(results.size() == batch.tickets.size());
  for (size_t i = 0; i < batch.tickets.size(); ++i) {
    auto it = in_drain_.find(batch.tickets[i]);
    PCHECK(it != in_drain_.end());
    const PendingFrame& frame = it->second;
    MemoInsert(frame.key, frame.verify, results[i].is_ad);
    if (policy_.near_dup_enabled && frame.has_phash) {
      L2Insert(frame.phash, results[i].is_ad);
    }
    in_flight_.erase(frame.ticket);
    if (emit_decisions_) {
      decisions_.push_back(EngineDecision{frame.ticket, results[i].is_ad});
    }
    in_drain_.erase(it);
  }
  if (outstanding_batches_ > 0) {
    --outstanding_batches_;
  }
  if (!results.empty()) {
    // All results in one batch share the per-image latency; one reading
    // feeds the deadline/degrade ladder per batch.
    NoteBatchLatency(results[0].latency_ms);
  }
  MaybeCloseDrain(now_ns);
}

std::vector<EngineDecision> ServingEngine::TakeDecisions() {
  std::vector<EngineDecision> taken;
  taken.swap(decisions_);
  return taken;
}

void ServingEngine::RequestReload(const std::string& path, int64_t now_ns) {
  reload_active_ = true;
  reload_succeeded_ = false;
  reload_path_ = path;
  reload_attempts_ = 0;
  next_attempt_ns_ = now_ns;  // the first attempt is due immediately
  backoff_ms_ = std::max(0.0, policy_.reload_backoff_ms);
}

void ServingEngine::ProvideArtifact(const std::vector<uint8_t>& bytes, bool committed,
                                    int64_t now_ns) {
  (void)bytes;  // empty = unreadable, non-empty + !committed = rejected;
                // the schedule treats both as a failed attempt
  if (!reload_active_) {
    return;
  }
  if (committed) {
    reload_active_ = false;
    reload_succeeded_ = true;
    return;
  }
  if (reload_attempts_ >= std::max(0, policy_.reload_max_retries)) {
    // Retries exhausted. The caller's network was never touched by the
    // failed attempts (stage-then-commit), so it keeps serving the
    // previous weights.
    reload_active_ = false;
    reload_succeeded_ = false;
    return;
  }
  ++reload_attempts_;
  ++stats_.reload_retries;
  next_attempt_ns_ = now_ns + static_cast<int64_t>(backoff_ms_ * 1e6);
  backoff_ms_ *= 2.0;
}

int64_t ServingEngine::next_wake_ns() const {
  return reload_active_ ? next_attempt_ns_ : -1;
}

void ServingEngine::MemoEvictOne() {
  // CLOCK second-chance sweep: clear reference bits until an unreferenced
  // slot comes under the hand, then swap-remove it so the ring stays dense.
  // Worst case is two revolutions (first clears every bit), so the sweep is
  // O(capacity) bounded even when everything was recently hit.
  PCHECK(!memo_slots_.empty());
  for (;;) {
    if (clock_hand_ >= memo_slots_.size()) {
      clock_hand_ = 0;
    }
    MemoSlot& slot = memo_slots_[clock_hand_];
    if (slot.referenced) {
      slot.referenced = false;
      ++clock_hand_;
      continue;
    }
    memo_index_.erase(slot.key);
    if (clock_hand_ + 1 != memo_slots_.size()) {
      slot = memo_slots_.back();
      memo_index_[slot.key] = clock_hand_;
    }
    memo_slots_.pop_back();
    ++stats_.evicted;
    return;
  }
}

void ServingEngine::MemoInsert(uint64_t key, uint64_t verify, bool is_ad) {
  auto it = memo_index_.find(key);
  if (it != memo_index_.end()) {
    // Last writer wins if two colliding creatives were in one drain; the
    // loser re-classifies on its next frame (counted as a collision)
    // instead of inheriting the winner's decision.
    MemoSlot& slot = memo_slots_[it->second];
    slot.verify = verify;
    slot.is_ad = is_ad;
    return;
  }
  if (policy_.max_memo_entries > 0 && memo_slots_.size() >= policy_.max_memo_entries) {
    MemoEvictOne();
  }
  memo_index_[key] = memo_slots_.size();
  // Inserted unreferenced: a new entry earns its reference bit with a hit,
  // so a flood of one-off creatives recycles its own slots instead of
  // evicting the fleet's hot set.
  memo_slots_.push_back(MemoSlot{key, verify, is_ad, false});
}

void ServingEngine::L2EvictOne() {
  // Same CLOCK sweep as L1, minus the index map (L2 lookups are linear
  // Hamming scans, so a dense vector is the whole structure).
  PCHECK(!l2_slots_.empty());
  for (;;) {
    if (l2_hand_ >= l2_slots_.size()) {
      l2_hand_ = 0;
    }
    L2Slot& slot = l2_slots_[l2_hand_];
    if (slot.referenced) {
      slot.referenced = false;
      ++l2_hand_;
      continue;
    }
    if (l2_hand_ + 1 != l2_slots_.size()) {
      slot = l2_slots_.back();
    }
    l2_slots_.pop_back();
    ++stats_.evicted;
    return;
  }
}

void ServingEngine::L2Insert(uint64_t phash, bool is_ad) {
  for (L2Slot& slot : l2_slots_) {
    if (slot.phash == phash) {
      slot.is_ad = is_ad;  // last writer wins, mirroring L1
      return;
    }
  }
  if (policy_.max_near_dup_entries > 0 &&
      l2_slots_.size() >= policy_.max_near_dup_entries) {
    L2EvictOne();
  }
  l2_slots_.push_back(L2Slot{phash, is_ad, false});
}

int64_t ServingEngine::L2Probe(uint64_t phash) {
  const int threshold = std::max(0, policy_.near_dup_hamming);
  int best_distance = threshold + 1;
  int64_t best_index = -1;
  for (size_t i = 0; i < l2_slots_.size(); ++i) {
    const int distance = HammingDistance(l2_slots_[i].phash, phash);
    if (distance < best_distance) {
      best_distance = distance;
      best_index = static_cast<int64_t>(i);
    }
  }
  if (best_index >= 0) {
    l2_slots_[static_cast<size_t>(best_index)].referenced = true;
  }
  return best_index;
}

void ServingEngine::NoteBatchLatency(double per_image_ms) {
  if (policy_.classify_deadline_ms <= 0.0) {
    return;
  }
  if (per_image_ms <= policy_.classify_deadline_ms) {
    consecutive_misses_ = 0;
    return;
  }
  ++stats_.deadline_misses;
  if (!degraded_ && policy_.degrade_after_misses > 0 &&
      ++consecutive_misses_ >= policy_.degrade_after_misses) {
    // Trip the degrade state: fail open on every uncached creative (the
    // paper's async contract — render now — held even when inference has
    // gone pathological) until recover_after_frames frames pass.
    degraded_ = true;
    frames_until_recovery_ = std::max(1, policy_.recover_after_frames);
    ++stats_.degrade_transitions;
  }
}

void ServingEngine::MaybeCloseDrain(int64_t now_ns) {
  if (!drain_open_) {
    return;
  }
  if (drain_cursor_ < drain_.size()) {
    const bool budget_expired =
        batches_started_ > 0 && drain_budget_ms_ > 0.0 &&
        static_cast<double>(now_ns - drain_start_ns_) / 1e6 >= drain_budget_ms_;
    if (!budget_expired) {
      return;  // more batches to hand out, budget permitting
    }
    // Budget spent with work left: requeue the unprocessed tail at the
    // front (admission order preserved). Their in_flight_ keys were never
    // released, so duplicates arriving meanwhile still coalesce.
    pending_.insert(pending_.begin(),
                    std::make_move_iterator(drain_.begin() +
                                            static_cast<std::ptrdiff_t>(drain_cursor_)),
                    std::make_move_iterator(drain_.end()));
    drain_.erase(drain_.begin() + static_cast<std::ptrdiff_t>(drain_cursor_),
                 drain_.end());
  }
  if (outstanding_batches_ == 0) {
    drain_open_ = false;
    drain_.clear();
    drain_cursor_ = 0;
    batches_started_ = 0;
  }
}

}  // namespace percival
