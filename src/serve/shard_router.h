// ShardRouter: a sharded multi-model ad-classification service.
//
// One fleet serves many tenants/locales, each with its own trained network
// (ModelZoo entry) and its own ServingPolicy — a locale whose creatives
// churn fast may want a tighter memo cap; a tenant running on weak edge
// hardware may want a lower deadline. The router owns N shards (each a
// full AdClassifier + AsyncAdClassifier stack over a zoo model), routes
// tenants to shards on a consistent-hash ring (adding a shard only remaps
// the tenants that land on the new shard — every other tenant keeps its
// warm memo cache), and rolls per-shard stats up into one fleet view.
//
// Failure isolation is the point: each shard reloads its weight artifact
// through its own staged-commit LoadWeightsWithRetry, so one tenant's
// corrupt artifact (fault-injected via serialize.artifact.corrupt, or a
// shard-local serve.shard.reload_fail) leaves that shard serving its
// previous weights while every other shard reloads — and serves — cleanly.
#ifndef PERCIVAL_SRC_SERVE_SHARD_ROUTER_H_
#define PERCIVAL_SRC_SERVE_SHARD_ROUTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/core/classifier.h"
#include "src/core/model_zoo.h"
#include "src/img/bitmap.h"

namespace percival {

// One shard's configuration: the tenant-facing name doubles as the
// ModelZoo key (point several specs at one model by giving them the same
// zoo entry via `model`, left empty to default to `name`).
struct ShardSpec {
  std::string name;
  std::string model;  // zoo key; empty -> name
  ServingPolicy policy;
};

class ShardRouter {
 public:
  // Builds every shard up front: each gets its network from
  // `zoo.GetOrTrain(spec.model, config, train)` (first bring-up trains,
  // later bring-ups load the cached artifact), an AdClassifier with
  // `threshold`, and an AsyncAdClassifier configured with spec.policy.
  ShardRouter(ModelZoo& zoo, const PercivalNetConfig& config,
              std::vector<ShardSpec> specs, const std::function<void(Network&)>& train,
              float threshold = 0.5f);

  size_t shard_count() const { return shards_.size(); }
  const std::string& shard_name(size_t shard) const { return shards_[shard]->name; }

  // Consistent routing: tenant -> shard index, stable across calls and —
  // for tenants not adjacent to a new shard's ring points — stable across
  // shard-set changes.
  size_t ShardFor(const std::string& tenant) const;

  // Routes one decoded frame to its tenant's shard (async path: the frame
  // renders immediately; classification is queued per the shard's policy).
  bool OnFrame(const std::string& tenant, const ImageInfo& info, Bitmap& pixels,
               const std::string& source_url);

  // Drains one shard / every shard (see AsyncAdClassifier::DrainPending).
  void DrainShard(size_t shard, ThreadPool* pool = nullptr, int batch_size = 16,
                  double budget_ms = -1.0);
  void DrainAll(ThreadPool* pool = nullptr, int batch_size = 16, double budget_ms = -1.0);

  // Reloads one shard's weights from `path` with that shard's retry/backoff
  // policy. Staged-commit per shard: failure leaves the shard serving its
  // previous weights and never touches any other shard. Counts
  // reloads_ok / reloads_failed on the shard.
  bool ReloadShard(size_t shard, const std::string& path);

  // Per-shard observability. `classifier` merges the async wrapper's
  // ladder/memo counters with the inner classifier's execution counters
  // (each group read under its own lock, coherently); the router-level
  // counters are read under the shard's router lock.
  struct ShardStats {
    std::string name;
    int64_t routed = 0;          // frames this router sent to the shard
    int64_t reloads_ok = 0;
    int64_t reloads_failed = 0;
    bool model_was_cached = false;  // zoo had an artifact at bring-up
    ClassifierStats classifier;
  };
  ShardStats StatsFor(size_t shard) const;
  std::vector<ShardStats> AllStats() const;
  // Fleet rollup: the sum of every shard's classifier counters.
  ClassifierStats Rollup() const;

  // Direct access for tests and deployment plumbing (e.g. pointing
  // SaveQuantized at a shard's network, or tuning a live shard's policy).
  AdClassifier& classifier(size_t shard) { return *shards_[shard]->classifier; }
  AsyncAdClassifier& async(size_t shard) { return *shards_[shard]->async; }

 private:
  struct Shard {
    std::string name;
    std::unique_ptr<AdClassifier> classifier;
    std::unique_ptr<AsyncAdClassifier> async;
    bool model_was_cached = false;
    // Router-level counters (the classifier keeps its own stats); one
    // mutex per shard so tenant traffic on different shards never
    // serializes through the router.
    mutable std::mutex mutex;
    int64_t routed = 0;
    int64_t reloads_ok = 0;
    int64_t reloads_failed = 0;
  };

  // Consistent-hash ring: kVirtualNodes points per shard, sorted by hash.
  // A tenant maps to the first point clockwise from its own hash.
  std::vector<std::pair<uint64_t, size_t>> ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_SERVE_SHARD_ROUTER_H_
