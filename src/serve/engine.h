// ServingEngine: the sans-IO core of the serving stack.
//
// Every piece of serving STATE — bounded admission (admit / coalesce /
// shed), the two-tier memo cache (L1 exact pixel-hash CLOCK ring + L2
// perceptual near-duplicate cache), soft deadlines, the fail-open degrade
// ladder, and the reload retry/backoff schedule — lives here, and every
// piece of serving RUNTIME stays with the caller. The engine owns no
// threads, opens no files, and never reads a clock: time arrives as a
// caller-supplied `now_ns`, artifact bytes arrive through
// ProvideArtifact(), and classification itself is executed by the caller
// between BeginBatch() and CompleteBatch(). A host (a browser render loop,
// an extension, our own AsyncAdClassifier adapter) embeds the whole
// serving policy without inheriting a thread pool, a filesystem, or a
// clock — the minimal-surface argument from the unikernel literature
// applied to an embeddable library.
//
// The step loop, from the caller's side:
//
//   SubmitOutcome s = engine.Submit(pixels, now_ns);   // per decoded frame
//   if (s.disposition == SubmitDisposition::kAdmitted) {
//     // The engine stored no pixels. Hand it a buffer YOU own and keep
//     // alive until the frame's batch completes:
//     engine.ProvidePixels(s.ticket, &my_retained_copy);
//   }
//   // ... later, off the critical path:
//   engine.BeginDrain(now_ns, budget_ms);
//   while (engine.Step(now_ns) == EngineAction::kRunBatch) {
//     EngineBatch b = engine.BeginBatch(batch_size);
//     results = <classify b.images with your executor>;
//     engine.CompleteBatch(b, results, now_ns);        // memoize + ladder
//   }
//   // Reload, same shape (the backoff schedule runs on caller time):
//   engine.RequestReload(path, now_ns);
//   if (engine.Step(now_ns) == EngineAction::kNeedArtifact) {
//     bytes = <read engine.ArtifactPath() yourself>;
//     committed = <stage-then-commit bytes into your network>;
//     engine.ProvideArtifact(bytes, committed, now_ns);
//   }
//
// The engine is NOT internally synchronized: it is a state machine with
// exactly one logical owner, and the adapter that shares it across threads
// (AsyncAdClassifier) brings its own lock. Multiple batches may be
// outstanding at once (a pooled drain classifies them concurrently); only
// the engine calls themselves must be serialized.
#ifndef PERCIVAL_SRC_SERVE_ENGINE_H_
#define PERCIVAL_SRC_SERVE_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/img/bitmap.h"
#include "src/serve/policy.h"

namespace percival {

// What the caller should do next. Submit() resolves frames immediately
// (the async contract: a frame never waits), so the actions are about the
// work the caller owes the engine, not about pending answers.
enum class EngineAction {
  kIdle,          // nothing to do (and no drain/reload in progress)
  kRunBatch,      // a drain is open and a batch is ready: BeginBatch()
  kEmitDecision,  // resolved decisions are queued: TakeDecisions()
  kNeedArtifact,  // a reload attempt is due: read ArtifactPath(), then
                  // ProvideArtifact()
};

// How Submit() resolved a frame. Every disposition renders the frame
// immediately; only kAdmitted creates future work (and a buffer
// obligation) for the caller.
enum class SubmitDisposition {
  kHitExact,    // L1 memo hit: the decision is the memoized one
  kHitNearDup,  // L2 perceptual hit: near-duplicate decision reused,
                // exact hash promoted into L1
  kAdmitted,    // queued for classification — caller must ProvidePixels()
  kCoalesced,   // duplicate of a queued/in-flight creative: rides that work
  kShed,        // refused admission (queue full / saturation fault /
                // degraded): renders unclassified, fail-open
};

struct SubmitOutcome {
  bool is_ad = false;  // the immediate render decision (fail-open: false
                       // unless a memo tier answered)
  SubmitDisposition disposition = SubmitDisposition::kShed;
  // Identifies an admitted frame through ProvidePixels/EngineBatch. Only
  // meaningful when disposition == kAdmitted.
  uint64_t ticket = 0;
};

// One classification batch, engine-selected in admission order. `images`
// are the caller-provided buffers (ProvidePixels); `tickets` parallel them.
struct EngineBatch {
  std::vector<const Bitmap*> images;
  std::vector<uint64_t> tickets;
  bool empty() const { return images.empty(); }
};

// A resolved decision, queued for hosts that consume decisions as events
// (TakeDecisions) rather than through Submit's return value. The
// AsyncAdClassifier adapter ignores this stream — OnDecodedFrame's return
// value is the decision — but an embedding that submits from one component
// and applies blocks in another drains it via kEmitDecision.
struct EngineDecision {
  uint64_t ticket = 0;
  bool is_ad = false;
};

class ServingEngine {
 public:
  explicit ServingEngine(const ServingPolicy& policy = ServingPolicy{});

  // Installs a new policy. A tightened memo cap (either tier) evicts down
  // to the new bound immediately — the whole point of a cap is a memory
  // bound that holds right now.
  void SetPolicy(const ServingPolicy& policy);
  const ServingPolicy& policy() const { return policy_; }

  // Replaces the primary 64-bit pixel hash (tests force collisions with a
  // deliberately weak hash; the seeded verification hash must then keep
  // distinct creatives from sharing one memoized decision).
  using HashFn = uint64_t (*)(const void* data, size_t size);
  void SetPrimaryHash(HashFn fn);

  // ---- frame intake ------------------------------------------------------
  // Resolves one decoded frame against the ladder: degrade bookkeeping,
  // L1 exact lookup, L2 perceptual lookup, then the admission ladder
  // (degraded -> shed; duplicate -> coalesce; queue full or saturation
  // fault -> shed; else admit). `pixels` is only read during the call —
  // the engine hashes it and lets go; an admitted frame must be backed by
  // ProvidePixels() before its batch begins.
  SubmitOutcome Submit(const Bitmap& pixels, int64_t now_ns);

  // Attaches the caller-owned pixel buffer for an admitted ticket. The
  // pointer must stay valid until the ticket's batch completes. The engine
  // never copies pixels.
  void ProvidePixels(uint64_t ticket, const Bitmap* pixels);

  // ---- the step loop -----------------------------------------------------
  // What should the caller do now, at caller-time `now_ns`? Also the point
  // where a drain whose budget has expired requeues its unprocessed tail.
  EngineAction Step(int64_t now_ns);

  // Opens a drain over the frames pending at this instant (frames
  // submitted mid-drain wait for the next one). `budget_ms` < 0 uses
  // policy().drain_budget_ms; 0 means unlimited. The budget is checked
  // BETWEEN batches (at least one batch always runs). Returns false when
  // there is nothing to drain. A drain already open stays open.
  bool BeginDrain(int64_t now_ns, double budget_ms = -1.0);

  // Takes the next batch (at most max_batch frames, admission order) out
  // of the open drain. Multiple batches may be outstanding concurrently.
  EngineBatch BeginBatch(int max_batch);

  // Frames of the open drain not yet handed out by BeginBatch, and the
  // effective budget the drain opened under — the adapter's pooled path
  // uses both to decide whether to fan batches out concurrently.
  size_t drain_remaining() const { return drain_.size() - drain_cursor_; }
  double drain_budget_ms() const { return drain_budget_ms_; }

  // Reports an executed batch: memoizes each decision into L1 (+L2 when
  // enabled), releases the in-flight keys, queues EngineDecisions, and
  // feeds results[0].latency_ms (the executor-measured per-image cost)
  // into the deadline/degrade ladder. The drain closes when its last
  // outstanding batch completes.
  void CompleteBatch(const EngineBatch& batch, const std::vector<ClassifyResult>& results,
                     int64_t now_ns);

  // Drains the resolved-decision queue (see EngineDecision). Decisions are
  // only queued after SetEmitDecisions(true) — a host that consumes
  // Submit's return value (the AsyncAdClassifier adapter) leaves emission
  // off so the queue cannot grow unbounded behind its back.
  void SetEmitDecisions(bool enabled) { emit_decisions_ = enabled; }
  std::vector<EngineDecision> TakeDecisions();

  // ---- reload (sans sleep: the backoff schedule runs on caller time) -----
  // Schedules a reload of `path`. Step() returns kNeedArtifact when an
  // attempt is due; the caller reads the artifact (its IO, its fault
  // points), attempts the stage-then-commit into its own network, and
  // reports both through ProvideArtifact. A failed attempt (empty bytes =
  // unreadable, committed=false = rejected) schedules the next attempt at
  // now + reload_backoff_ms * 2^k and counts stats().reload_retries, until
  // reload_max_retries retries exhaust.
  void RequestReload(const std::string& path, int64_t now_ns);
  const std::string& ArtifactPath() const { return reload_path_; }
  void ProvideArtifact(const std::vector<uint8_t>& bytes, bool committed, int64_t now_ns);
  // True while a reload is scheduled or awaiting its artifact.
  bool reload_active() const { return reload_active_; }
  // Outcome of the most recent RequestReload once reload_active() drops.
  bool reload_succeeded() const { return reload_succeeded_; }
  // Earliest caller-time at which Step() will have new work (the next
  // reload attempt). -1 when nothing is time-scheduled — an embedding can
  // sleep until this instant instead of polling.
  int64_t next_wake_ns() const;

  // ---- observability -----------------------------------------------------
  int64_t memo_size() const { return static_cast<int64_t>(memo_slots_.size()); }
  int64_t near_dup_size() const { return static_cast<int64_t>(l2_slots_.size()); }
  int64_t pending_size() const { return static_cast<int64_t>(pending_.size()); }
  bool degraded() const { return degraded_; }
  bool drain_open() const { return drain_open_; }
  const ClassifierStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ClassifierStats{}; }

 private:
  // A memo slot keeps the independent verification hash of the pixels it
  // was computed from: a primary-hash match alone is not proof of payload
  // equality, and inheriting a decision across a collision would block (or
  // pass) the wrong creative. `referenced` is the CLOCK bit: set on every
  // hit, cleared by the eviction sweep.
  struct MemoSlot {
    uint64_t key = 0;
    uint64_t verify = 0;
    bool is_ad = false;
    bool referenced = false;
  };
  // L2 slot: perceptual hash + decision. Lookup is a linear Hamming scan —
  // at the default 4096-entry cap that is 4096 popcounts per L1 miss,
  // noise next to a forward pass (and it only runs when near-dup is on).
  struct L2Slot {
    uint64_t phash = 0;
    bool is_ad = false;
    bool referenced = false;
  };
  struct PendingFrame {
    uint64_t ticket = 0;  // == flight key (primary ⊕ verify combine)
    uint64_t key = 0;
    uint64_t verify = 0;
    uint64_t phash = 0;  // computed at Submit when near-dup is enabled
    bool has_phash = false;
    const Bitmap* pixels = nullptr;  // caller-owned, via ProvidePixels
  };

  void MemoInsert(uint64_t key, uint64_t verify, bool is_ad);
  void MemoEvictOne();
  void L2Insert(uint64_t phash, bool is_ad);
  void L2EvictOne();
  // Returns the slot index of the closest L2 entry within the Hamming
  // threshold, or -1. Sets the CLOCK bit on a hit.
  int64_t L2Probe(uint64_t phash);
  // Per-executed-batch deadline accounting: feeds consecutive misses into
  // the degrade trip wire.
  void NoteBatchLatency(double per_image_ms);
  // Requeues the unprocessed drain tail (admission order preserved) and
  // closes the drain once no batch is outstanding.
  void MaybeCloseDrain(int64_t now_ns);

  ServingPolicy policy_;
  HashFn primary_hash_;
  ClassifierStats stats_;

  // L1: CLOCK ring (compact vector + index). Eviction swap-removes, so the
  // ring stays dense and memory is bounded by max_memo_entries exactly.
  std::vector<MemoSlot> memo_slots_;
  std::unordered_map<uint64_t, size_t> memo_index_;
  size_t clock_hand_ = 0;
  // L2: perceptual ring with its own CLOCK hand.
  std::vector<L2Slot> l2_slots_;
  size_t l2_hand_ = 0;

  // Tickets either queued in pending_ or being classified by an in-flight
  // batch; blocks duplicate work for repeated creatives without letting a
  // primary-hash collision alias two of them.
  std::unordered_set<uint64_t> in_flight_;
  std::vector<PendingFrame> pending_;

  // Open drain: the snapshot taken at BeginDrain, a cursor over it, and
  // the budget clock (all caller time). Frames handed out by BeginBatch
  // move into in_drain_ so CompleteBatch can recover their memo keys.
  bool drain_open_ = false;
  std::vector<PendingFrame> drain_;
  size_t drain_cursor_ = 0;
  std::unordered_map<uint64_t, PendingFrame> in_drain_;
  int outstanding_batches_ = 0;
  int batches_started_ = 0;
  int64_t drain_start_ns_ = 0;
  double drain_budget_ms_ = 0.0;

  // Degrade ladder state: consecutive over-deadline batches, and the frame
  // countdown to self-heal once degraded.
  int consecutive_misses_ = 0;
  int frames_until_recovery_ = 0;
  bool degraded_ = false;

  // Reload schedule.
  bool reload_active_ = false;
  bool reload_succeeded_ = false;
  std::string reload_path_;
  int reload_attempts_ = 0;
  int64_t next_attempt_ns_ = 0;
  double backoff_ms_ = 0.0;

  bool emit_decisions_ = false;
  std::vector<EngineDecision> decisions_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_SERVE_ENGINE_H_
