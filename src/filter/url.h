// Minimal URL model used by the filter engine and the synthetic web.
#ifndef PERCIVAL_SRC_FILTER_URL_H_
#define PERCIVAL_SRC_FILTER_URL_H_

#include <string>
#include <string_view>

namespace percival {

struct Url {
  std::string full;    // e.g. "https://cdn.adnet.example/banner/1.pif?w=300"
  std::string scheme;  // "https"
  std::string host;    // "cdn.adnet.example"
  std::string path;    // "/banner/1.pif?w=300"

  static Url Parse(std::string_view text);

  // Registrable domain approximation: the last two host labels
  // ("cdn.adnet.example" -> "adnet.example"). Good enough for the synthetic
  // web, whose hosts always have >= 2 labels.
  std::string RegistrableDomain() const;

  // True when `other_host` resolves to a different registrable domain —
  // the $third-party option semantics.
  bool IsThirdPartyOf(std::string_view page_host) const;
};

// True if `host` equals `domain` or is a subdomain of it.
bool HostMatchesDomain(std::string_view host, std::string_view domain);

}  // namespace percival

#endif  // PERCIVAL_SRC_FILTER_URL_H_
