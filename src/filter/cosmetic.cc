#include "src/filter/cosmetic.h"

#include <algorithm>

#include "src/filter/url.h"

namespace percival {

bool SelectorMatches(const std::string& selector, const ElementDescriptor& element) {
  if (selector.empty()) {
    return false;
  }
  size_t pos = 0;
  // Leading tag name (run of characters before '#' or '.').
  size_t tag_end = selector.find_first_of("#.");
  if (tag_end == std::string::npos) {
    tag_end = selector.size();
  }
  if (tag_end > 0) {
    if (selector.substr(0, tag_end) != element.tag) {
      return false;
    }
  }
  pos = tag_end;
  while (pos < selector.size()) {
    const char kind = selector[pos];
    size_t end = selector.find_first_of("#.", pos + 1);
    if (end == std::string::npos) {
      end = selector.size();
    }
    const std::string name = selector.substr(pos + 1, end - pos - 1);
    if (name.empty()) {
      return false;
    }
    if (kind == '#') {
      if (element.id != name) {
        return false;
      }
    } else if (kind == '.') {
      if (std::find(element.classes.begin(), element.classes.end(), name) ==
          element.classes.end()) {
        return false;
      }
    } else {
      return false;
    }
    pos = end;
  }
  return true;
}

bool MatchesCosmeticRule(const CosmeticRule& rule, const std::string& page_host,
                         const ElementDescriptor& element) {
  if (!rule.domains.empty()) {
    bool domain_ok = false;
    for (const std::string& domain : rule.domains) {
      if (HostMatchesDomain(page_host, domain)) {
        domain_ok = true;
        break;
      }
    }
    if (!domain_ok) {
      return false;
    }
  }
  return SelectorMatches(rule.selector, element);
}

}  // namespace percival
