#include "src/filter/matcher.h"

#include <cctype>

namespace percival {

namespace {

// Adblock separator class: anything but letters, digits, and "_-.%", plus
// the end-of-address position.
bool IsSeparator(char c) {
  return !(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
           c == '%');
}

}  // namespace

bool PatternMatchesAt(std::string_view pattern, std::string_view text, size_t start,
                      bool anchor_end) {
  // Recursive wildcard matcher. Patterns are short, so recursion depth is
  // bounded by the number of '*' in the rule.
  size_t pi = 0;
  size_t ti = start;
  size_t star_pi = std::string_view::npos;
  size_t star_ti = 0;
  while (true) {
    if (pi == pattern.size()) {
      if (!anchor_end || ti == text.size()) {
        return true;
      }
    } else if (pattern[pi] == '*') {
      star_pi = pi++;
      star_ti = ti;
      continue;
    } else if (ti < text.size()) {
      const char pc = pattern[pi];
      const char tc = text[ti];
      if (pc == '^' ? IsSeparator(tc) : pc == tc) {
        ++pi;
        ++ti;
        continue;
      }
    } else if (pattern[pi] == '^' && ti >= text.size()) {
      // '^' also matches the end-of-address position (consuming nothing).
      ++pi;
      continue;
    }
    // Mismatch: backtrack to the last '*' if any.
    if (star_pi == std::string_view::npos || star_ti >= text.size()) {
      return false;
    }
    pi = star_pi + 1;
    ti = ++star_ti;
  }
}

bool MatchesNetworkRule(const NetworkRule& rule, const RequestContext& request) {
  // Option filters first (cheap).
  if (!rule.types.empty()) {
    bool type_ok = false;
    for (ResourceType t : rule.types) {
      if (t == request.type) {
        type_ok = true;
        break;
      }
    }
    if (!type_ok) {
      return false;
    }
  }
  if (rule.third_party.has_value()) {
    const bool is_third = request.url.IsThirdPartyOf(request.page_host);
    if (is_third != *rule.third_party) {
      return false;
    }
  }
  if (!rule.include_domains.empty()) {
    bool included = false;
    for (const std::string& domain : rule.include_domains) {
      if (HostMatchesDomain(request.page_host, domain)) {
        included = true;
        break;
      }
    }
    if (!included) {
      return false;
    }
  }
  for (const std::string& domain : rule.exclude_domains) {
    if (HostMatchesDomain(request.page_host, domain)) {
      return false;
    }
  }

  const std::string& text = request.url.full;
  if (rule.anchor_start) {
    return PatternMatchesAt(rule.pattern, text, 0, rule.anchor_end);
  }
  if (rule.anchor_domain) {
    // Pattern must match starting at the host, or at any subdomain-label
    // boundary within the host.
    size_t host_start = text.find("://");
    host_start = (host_start == std::string::npos) ? 0 : host_start + 3;
    size_t host_end = text.find('/', host_start);
    if (host_end == std::string::npos) {
      host_end = text.size();
    }
    for (size_t pos = host_start; pos < host_end; ++pos) {
      if (pos == host_start || text[pos - 1] == '.') {
        if (PatternMatchesAt(rule.pattern, text, pos, rule.anchor_end)) {
          return true;
        }
      }
    }
    return false;
  }
  // Unanchored: match anywhere.
  for (size_t pos = 0; pos <= text.size(); ++pos) {
    if (PatternMatchesAt(rule.pattern, text, pos, rule.anchor_end)) {
      return true;
    }
    if (pos == text.size()) {
      break;
    }
  }
  return false;
}

}  // namespace percival
