// FilterEngine: the block-list ad blocker PERCIVAL is compared against and
// complements (the paper's EasyList baseline, used by Adblock Plus, uBlock
// Origin, Ghostery and Brave shields).
#ifndef PERCIVAL_SRC_FILTER_ENGINE_H_
#define PERCIVAL_SRC_FILTER_ENGINE_H_

#include <string>
#include <vector>

#include "src/filter/cosmetic.h"
#include "src/filter/matcher.h"
#include "src/filter/rule.h"

namespace percival {

// Result of consulting the engine for one network request.
struct BlockDecision {
  bool blocked = false;
  std::string matched_rule;  // raw text of the deciding rule (if any)
};

class FilterEngine {
 public:
  FilterEngine() = default;

  // Parses and adds one rule line; returns false for unsupported syntax.
  bool AddRule(const std::string& line);

  // Adds every line of a filter list; returns the number of rules accepted.
  int AddList(const std::vector<std::string>& lines);

  // Network decision: exception rules always override block rules.
  BlockDecision ShouldBlockRequest(const RequestContext& request) const;

  // Cosmetic decision for a DOM element on a page.
  BlockDecision ShouldHideElement(const std::string& page_host,
                                  const ElementDescriptor& element) const;

  int network_rule_count() const { return static_cast<int>(network_rules_.size()); }
  int cosmetic_rule_count() const { return static_cast<int>(cosmetic_rules_.size()); }

 private:
  std::vector<NetworkRule> network_rules_;
  std::vector<CosmeticRule> cosmetic_rules_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_FILTER_ENGINE_H_
