// Network-rule pattern matching with Adblock-Plus semantics.
#ifndef PERCIVAL_SRC_FILTER_MATCHER_H_
#define PERCIVAL_SRC_FILTER_MATCHER_H_

#include <string_view>

#include "src/filter/rule.h"
#include "src/filter/url.h"

namespace percival {

// Context for matching a network request against rules.
struct RequestContext {
  Url url;                 // the requested resource
  std::string page_host;   // host of the top-level document
  ResourceType type = ResourceType::kOther;
};

// True when the rule's pattern (with anchors, wildcards, and separator
// placeholders) matches the request URL and all option filters pass.
bool MatchesNetworkRule(const NetworkRule& rule, const RequestContext& request);

// Exposed for property tests: raw pattern match ignoring options.
// `pattern` may contain '*' wildcards and '^' separators.
bool PatternMatchesAt(std::string_view pattern, std::string_view text, size_t start,
                      bool anchor_end);

}  // namespace percival

#endif  // PERCIVAL_SRC_FILTER_MATCHER_H_
