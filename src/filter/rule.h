// Adblock-Plus filter rule model and parser.
//
// Supported syntax (the subset EasyList's ad-image rules actually use):
//   ||host^path        domain-anchored network rule
//   |https://...       start anchor;  trailing | end anchor
//   *                  wildcard;  ^  separator placeholder
//   @@rule             exception (overrides blocks)
//   rule$opt1,opt2     options: image, script, subdocument, third-party,
//                      ~third-party, domain=a.com|~b.com
//   host##selector     cosmetic (element-hiding) rule
//   ##selector         generic cosmetic rule
//   host#@#selector    cosmetic exception
//   ! comment          ignored
#ifndef PERCIVAL_SRC_FILTER_RULE_H_
#define PERCIVAL_SRC_FILTER_RULE_H_

#include <optional>
#include <string>
#include <vector>

namespace percival {

enum class ResourceType {
  kImage,
  kScript,
  kSubdocument,  // iframes
  kStylesheet,
  kDocument,
  kOther,
};

const char* ResourceTypeName(ResourceType type);

struct NetworkRule {
  std::string raw;               // original rule text
  std::string pattern;           // pattern body with anchors stripped
  bool is_exception = false;     // @@ prefix
  bool anchor_domain = false;    // || prefix
  bool anchor_start = false;     // | prefix
  bool anchor_end = false;       // | suffix
  // Option filters; empty type list means "any type".
  std::vector<ResourceType> types;
  std::optional<bool> third_party;        // $third-party / $~third-party
  std::vector<std::string> include_domains;  // $domain=a.com
  std::vector<std::string> exclude_domains;  // $domain=~a.com
};

struct CosmeticRule {
  std::string raw;
  std::string selector;              // e.g. ".ad-banner", "#ad-slot", "div.ad"
  bool is_exception = false;         // #@#
  std::vector<std::string> domains;  // empty => generic (all sites)
};

struct ParsedRule {
  std::optional<NetworkRule> network;
  std::optional<CosmeticRule> cosmetic;
  bool is_comment = false;
};

// Parses one filter-list line. Returns std::nullopt for unsupported syntax.
std::optional<ParsedRule> ParseRuleLine(const std::string& line);

}  // namespace percival

#endif  // PERCIVAL_SRC_FILTER_RULE_H_
