#include "src/filter/url.h"

namespace percival {

Url Url::Parse(std::string_view text) {
  Url url;
  url.full = std::string(text);
  size_t scheme_end = text.find("://");
  std::string_view rest = text;
  if (scheme_end != std::string_view::npos) {
    url.scheme = std::string(text.substr(0, scheme_end));
    rest = text.substr(scheme_end + 3);
  }
  size_t path_start = rest.find('/');
  if (path_start == std::string_view::npos) {
    url.host = std::string(rest);
    url.path = "/";
  } else {
    url.host = std::string(rest.substr(0, path_start));
    url.path = std::string(rest.substr(path_start));
  }
  return url;
}

std::string Url::RegistrableDomain() const {
  size_t last_dot = host.rfind('.');
  if (last_dot == std::string::npos || last_dot == 0) {
    return host;
  }
  size_t second_dot = host.rfind('.', last_dot - 1);
  if (second_dot == std::string::npos) {
    return host;
  }
  return host.substr(second_dot + 1);
}

bool Url::IsThirdPartyOf(std::string_view page_host) const {
  Url page;
  page.host = std::string(page_host);
  return RegistrableDomain() != page.RegistrableDomain();
}

bool HostMatchesDomain(std::string_view host, std::string_view domain) {
  if (host == domain) {
    return true;
  }
  if (host.size() > domain.size() + 1 && host.ends_with(domain)) {
    return host[host.size() - domain.size() - 1] == '.';
  }
  return false;
}

}  // namespace percival
