#include "src/filter/engine.h"

namespace percival {

bool FilterEngine::AddRule(const std::string& line) {
  std::optional<ParsedRule> parsed = ParseRuleLine(line);
  if (!parsed) {
    return false;
  }
  if (parsed->is_comment) {
    return true;
  }
  if (parsed->network) {
    network_rules_.push_back(std::move(*parsed->network));
    return true;
  }
  if (parsed->cosmetic) {
    cosmetic_rules_.push_back(std::move(*parsed->cosmetic));
    return true;
  }
  return false;
}

int FilterEngine::AddList(const std::vector<std::string>& lines) {
  int accepted = 0;
  for (const std::string& line : lines) {
    if (AddRule(line)) {
      ++accepted;
    }
  }
  return accepted;
}

BlockDecision FilterEngine::ShouldBlockRequest(const RequestContext& request) const {
  BlockDecision decision;
  // Exceptions dominate: check them first; any match whitelists the request.
  for (const NetworkRule& rule : network_rules_) {
    if (rule.is_exception && MatchesNetworkRule(rule, request)) {
      decision.blocked = false;
      decision.matched_rule = rule.raw;
      return decision;
    }
  }
  for (const NetworkRule& rule : network_rules_) {
    if (!rule.is_exception && MatchesNetworkRule(rule, request)) {
      decision.blocked = true;
      decision.matched_rule = rule.raw;
      return decision;
    }
  }
  return decision;
}

BlockDecision FilterEngine::ShouldHideElement(const std::string& page_host,
                                              const ElementDescriptor& element) const {
  BlockDecision decision;
  for (const CosmeticRule& rule : cosmetic_rules_) {
    if (rule.is_exception && MatchesCosmeticRule(rule, page_host, element)) {
      decision.blocked = false;
      decision.matched_rule = rule.raw;
      return decision;
    }
  }
  for (const CosmeticRule& rule : cosmetic_rules_) {
    if (!rule.is_exception && MatchesCosmeticRule(rule, page_host, element)) {
      decision.blocked = true;
      decision.matched_rule = rule.raw;
      return decision;
    }
  }
  return decision;
}

}  // namespace percival
