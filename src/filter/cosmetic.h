// Cosmetic (element-hiding) rule matching.
//
// EasyList CSS rules select DOM elements that are "potential containers of
// ads" (§5.2). The engine matches a small CSS-selector subset against an
// element descriptor supplied by the renderer, avoiding a dependency from
// the filter library on the DOM implementation.
#ifndef PERCIVAL_SRC_FILTER_COSMETIC_H_
#define PERCIVAL_SRC_FILTER_COSMETIC_H_

#include <string>
#include <vector>

#include "src/filter/rule.h"

namespace percival {

// The element features a cosmetic selector can test.
struct ElementDescriptor {
  std::string tag;                   // lowercase, e.g. "div"
  std::string id;                    // id attribute
  std::vector<std::string> classes;  // class list
};

// Supported selector grammar: [tag][#id][.class]*  e.g. "div.ad-box",
// "#ad-slot", ".sponsored.banner", "iframe".
bool SelectorMatches(const std::string& selector, const ElementDescriptor& element);

// True when `rule` applies on a page at `page_host` and selects `element`.
bool MatchesCosmeticRule(const CosmeticRule& rule, const std::string& page_host,
                         const ElementDescriptor& element);

}  // namespace percival

#endif  // PERCIVAL_SRC_FILTER_COSMETIC_H_
