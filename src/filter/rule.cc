#include "src/filter/rule.h"

#include <algorithm>

namespace percival {

namespace {

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseOptions(const std::string& options, NetworkRule* rule) {
  for (const std::string& raw_option : Split(options, ',')) {
    const std::string option = Trim(raw_option);
    if (option == "image") {
      rule->types.push_back(ResourceType::kImage);
    } else if (option == "script") {
      rule->types.push_back(ResourceType::kScript);
    } else if (option == "subdocument") {
      rule->types.push_back(ResourceType::kSubdocument);
    } else if (option == "stylesheet") {
      rule->types.push_back(ResourceType::kStylesheet);
    } else if (option == "third-party") {
      rule->third_party = true;
    } else if (option == "~third-party") {
      rule->third_party = false;
    } else if (option.starts_with("domain=")) {
      for (const std::string& domain : Split(option.substr(7), '|')) {
        if (domain.starts_with("~")) {
          rule->exclude_domains.push_back(domain.substr(1));
        } else if (!domain.empty()) {
          rule->include_domains.push_back(domain);
        }
      }
    } else {
      return false;  // Unsupported option: reject the whole rule.
    }
  }
  return true;
}

}  // namespace

const char* ResourceTypeName(ResourceType type) {
  switch (type) {
    case ResourceType::kImage:
      return "image";
    case ResourceType::kScript:
      return "script";
    case ResourceType::kSubdocument:
      return "subdocument";
    case ResourceType::kStylesheet:
      return "stylesheet";
    case ResourceType::kDocument:
      return "document";
    case ResourceType::kOther:
      return "other";
  }
  return "other";
}

std::optional<ParsedRule> ParseRuleLine(const std::string& raw_line) {
  const std::string line = Trim(raw_line);
  ParsedRule parsed;
  if (line.empty() || line[0] == '!' || line.starts_with("[Adblock")) {
    parsed.is_comment = true;
    return parsed;
  }

  // Cosmetic rules: host list ## selector (or #@# for exceptions).
  size_t cosmetic_pos = line.find("##");
  size_t exception_pos = line.find("#@#");
  if (exception_pos != std::string::npos &&
      (cosmetic_pos == std::string::npos || exception_pos < cosmetic_pos)) {
    CosmeticRule rule;
    rule.raw = line;
    rule.is_exception = true;
    rule.selector = Trim(line.substr(exception_pos + 3));
    const std::string hosts = line.substr(0, exception_pos);
    for (const std::string& host : Split(hosts, ',')) {
      if (!Trim(host).empty()) {
        rule.domains.push_back(Trim(host));
      }
    }
    if (rule.selector.empty()) {
      return std::nullopt;
    }
    parsed.cosmetic = std::move(rule);
    return parsed;
  }
  if (cosmetic_pos != std::string::npos) {
    CosmeticRule rule;
    rule.raw = line;
    rule.selector = Trim(line.substr(cosmetic_pos + 2));
    const std::string hosts = line.substr(0, cosmetic_pos);
    for (const std::string& host : Split(hosts, ',')) {
      if (!Trim(host).empty()) {
        rule.domains.push_back(Trim(host));
      }
    }
    if (rule.selector.empty()) {
      return std::nullopt;
    }
    parsed.cosmetic = std::move(rule);
    return parsed;
  }

  // Network rule.
  NetworkRule rule;
  rule.raw = line;
  std::string body = line;
  if (body.starts_with("@@")) {
    rule.is_exception = true;
    body = body.substr(2);
  }
  // Options come after the last '$' that is followed by known option text.
  size_t dollar = body.rfind('$');
  if (dollar != std::string::npos && dollar + 1 < body.size()) {
    const std::string options = body.substr(dollar + 1);
    NetworkRule with_options = rule;
    if (ParseOptions(options, &with_options)) {
      rule = std::move(with_options);
      body = body.substr(0, dollar);
    }
  }
  if (body.starts_with("||")) {
    rule.anchor_domain = true;
    body = body.substr(2);
  } else if (body.starts_with("|")) {
    rule.anchor_start = true;
    body = body.substr(1);
  }
  if (body.ends_with("|")) {
    rule.anchor_end = true;
    body = body.substr(0, body.size() - 1);
  }
  if (body.empty()) {
    return std::nullopt;
  }
  rule.pattern = body;
  parsed.network = std::move(rule);
  return parsed;
}

}  // namespace percival
