// PERCIVAL's CNN architectures (paper Fig. 3).
//
// Two networks are constructible:
//   * the original SqueezeNet (v1.0 topology, 2-class head) — the starting
//     point the paper compares against (~4.8 MB), and
//   * the PERCIVAL fork — conv1, six fire modules with max-pooling after
//     conv1 and after every two fire modules (extra downsampling), a final
//     1x1 conv head, global average pooling and SoftMax (<2 MB).
//
// Two *profiles* scale the fork: kPaperProfile (224x224 input, Fig. 3
// channel counts) and kExperimentProfile (64x64 input, channels / 4) used
// wherever a model must be trained inside a bench on this container
// (see DESIGN.md §5).
#ifndef PERCIVAL_SRC_CORE_MODEL_H_
#define PERCIVAL_SRC_CORE_MODEL_H_

#include <array>
#include <string>

#include "src/nn/network.h"

namespace percival {

struct FireConfig {
  int squeeze = 0;
  int expand = 0;
};

struct PercivalNetConfig {
  std::string name;
  int input_size = 224;
  int input_channels = 4;
  int conv1_channels = 64;
  std::array<FireConfig, 6> fires{};
  int classes = 2;
  uint64_t init_seed = 1;

  TensorShape InputShape(int batch = 1) const {
    return TensorShape{batch, input_size, input_size, input_channels};
  }
};

// Fig. 3 right-hand column: the network deployed in the browser.
PercivalNetConfig PaperProfile();

// Scaled profile for in-repo training (64x64, channels / 4).
PercivalNetConfig ExperimentProfile();

// Tiny profile for unit tests (16x16, minimal channels).
PercivalNetConfig TestProfile();

// Builds the PERCIVAL fork for a config. The network ends in logits
// ({n,1,1,classes}); apply Softmax for probabilities.
Network BuildPercivalNet(const PercivalNetConfig& config);

// Fig. 3 left-hand column: original SqueezeNet with a 2-class head, for the
// architecture-comparison bench. `input_channels` matches the fork's input.
Network BuildOriginalSqueezeNet(int input_channels, int classes, uint64_t seed);

}  // namespace percival

#endif  // PERCIVAL_SRC_CORE_MODEL_H_
