// ModelZoo: train-once disk cache for trained networks.
//
// Benches and examples share trained models; the first caller trains and
// saves, later callers load. Keys are (name, profile) pairs and files live
// under a cache directory (default: "percival_model_cache" in the working
// directory, overridable via the PERCIVAL_MODEL_DIR environment variable).
#ifndef PERCIVAL_SRC_CORE_MODEL_ZOO_H_
#define PERCIVAL_SRC_CORE_MODEL_ZOO_H_

#include <functional>
#include <string>

#include "src/core/model.h"
#include "src/nn/network.h"

namespace percival {

class ModelZoo {
 public:
  // Uses PERCIVAL_MODEL_DIR or the default cache directory.
  ModelZoo();
  explicit ModelZoo(std::string directory);

  // Returns a network built from `config`, with weights loaded from cache
  // when a file for `name` exists; otherwise invokes `train` (which
  // receives the freshly built network) and saves the result. Cached files
  // may be either PCVW format: the float v1 checkpoint is preferred, and a
  // host shipping only the ~4x-smaller int8 v2 artifact (see SaveQuantized)
  // loads that transparently instead.
  Network GetOrTrain(const std::string& name, const PercivalNetConfig& config,
                     const std::function<void(Network&)>& train);

  // Writes the int8 v2 deployment artifact for an already trained/loaded
  // network next to the float checkpoint (<name>.int8.pcvw). Returns the
  // path written, or an empty string on failure.
  std::string SaveQuantized(const std::string& name, Network& net);

  // Deletes a cached entry, both the float checkpoint and the quantized
  // artifact (tests).
  void Evict(const std::string& name);

  // True when a cached artifact (either format) exists for `name` — the
  // shard router uses this to report cold vs warm shard bring-up without
  // racing the load itself.
  bool HasCached(const std::string& name) const;

  // Artifact locations for `name`. Public so deployment wrappers can point
  // AdClassifier::LoadWeights (and its retry/backoff variant) at a zoo
  // entry, and so the serving robustness suite can corrupt an artifact at
  // its real path instead of guessing the layout.
  std::string CheckpointPath(const std::string& name) const;
  std::string QuantizedPath(const std::string& name) const;

  const std::string& directory() const { return directory_; }

 private:
  std::string directory_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_CORE_MODEL_ZOO_H_
