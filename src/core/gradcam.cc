#include "src/core/gradcam.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/base/logging.h"
#include "src/img/resize.h"

namespace percival {

Tensor GradCam(Network& network, const Tensor& input, size_t layer_index, int target_class) {
  PCHECK_LT(layer_index, network.LayerCount());
  PCHECK_EQ(input.shape().n, 1);

  // Full forward pass (caches every layer's state), keeping the feature map
  // at the requested layer.
  Tensor features = network.ForwardUpTo(input, layer_index + 1);
  Tensor logits = input;
  {
    Tensor current = features;
    for (size_t i = layer_index + 1; i < network.LayerCount(); ++i) {
      current = network.layer(i).Forward(current);
    }
    logits = current;
  }
  PCHECK_LT(target_class, logits.shape().c);

  // Backward from a one-hot gradient on the target logit, down to (but not
  // through) the feature layer.
  Tensor grad_logits(logits.shape());
  grad_logits.at(0, 0, 0, target_class) = 1.0f;
  network.ZeroGrads();
  Tensor grad_features = network.BackwardFrom(grad_logits, layer_index + 1);
  PCHECK(grad_features.shape() == features.shape());

  // Channel weights: global average of gradients; CAM = ReLU(sum_k w_k A_k).
  const TensorShape& fs = features.shape();
  std::vector<float> weights(static_cast<size_t>(fs.c), 0.0f);
  const int64_t plane = static_cast<int64_t>(fs.h) * fs.w;
  for (int64_t p = 0; p < plane; ++p) {
    const float* g = grad_features.data() + p * fs.c;
    for (int c = 0; c < fs.c; ++c) {
      weights[static_cast<size_t>(c)] += g[c];
    }
  }
  for (float& w : weights) {
    w /= static_cast<float>(plane);
  }

  Tensor cam(1, fs.h, fs.w, 1);
  for (int y = 0; y < fs.h; ++y) {
    for (int x = 0; x < fs.w; ++x) {
      float value = 0.0f;
      for (int c = 0; c < fs.c; ++c) {
        value += weights[static_cast<size_t>(c)] * features.at(0, y, x, c);
      }
      cam.at(0, y, x, 0) = std::max(value, 0.0f);
    }
  }
  return cam;
}

std::string RenderHeatmapAscii(const Tensor& heatmap, int max_width) {
  const TensorShape& s = heatmap.shape();
  const float hi = std::max(heatmap.Max(), 1e-12f);
  const int step = std::max(1, s.w / max_width);
  static const char kRamp[] = " .:-=+*#%@";
  std::ostringstream out;
  for (int y = 0; y < s.h; y += step) {
    for (int x = 0; x < s.w; x += step) {
      const float v = heatmap.at(0, y, x, 0) / hi;
      const int idx = std::clamp(static_cast<int>(v * 9.0f), 0, 9);
      out << kRamp[idx];
    }
    out << "\n";
  }
  return out.str();
}

Bitmap OverlayHeatmap(const Bitmap& source, const Tensor& heatmap) {
  Bitmap result = source;
  const TensorShape& s = heatmap.shape();
  const float hi = std::max(heatmap.Max(), 1e-12f);
  for (int y = 0; y < result.height(); ++y) {
    const int hy = std::min(y * s.h / std::max(result.height(), 1), s.h - 1);
    for (int x = 0; x < result.width(); ++x) {
      const int hx = std::min(x * s.w / std::max(result.width(), 1), s.w - 1);
      const float v = heatmap.at(0, hy, hx, 0) / hi;
      if (v > 0.15f) {
        Color c = result.GetPixel(x, y);
        c.r = static_cast<uint8_t>(std::min(255.0f, c.r + v * 160.0f));
        c.g = static_cast<uint8_t>(c.g * (1.0f - 0.4f * v));
        c.b = static_cast<uint8_t>(c.b * (1.0f - 0.4f * v));
        result.SetPixel(x, y, c);
      }
    }
  }
  return result;
}

}  // namespace percival
