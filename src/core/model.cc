#include "src/core/model.h"

#include "src/base/rng.h"
#include "src/nn/activation.h"
#include "src/nn/conv.h"
#include "src/nn/fire.h"
#include "src/nn/pool.h"

namespace percival {

PercivalNetConfig PaperProfile() {
  PercivalNetConfig config;
  config.name = "paper";
  config.input_size = 224;
  config.input_channels = 4;  // the paper feeds 224x224x4 RGBA
  config.conv1_channels = 64;
  config.fires = {FireConfig{16, 64},  FireConfig{16, 64},  FireConfig{32, 128},
                  FireConfig{32, 128}, FireConfig{64, 256}, FireConfig{64, 256}};
  config.classes = 2;
  return config;
}

PercivalNetConfig ExperimentProfile() {
  PercivalNetConfig config;
  config.name = "experiment";
  config.input_size = 64;
  config.input_channels = 3;
  config.conv1_channels = 16;
  config.fires = {FireConfig{4, 16}, FireConfig{4, 16}, FireConfig{8, 32},
                  FireConfig{8, 32}, FireConfig{16, 64}, FireConfig{16, 64}};
  config.classes = 2;
  return config;
}

PercivalNetConfig TestProfile() {
  PercivalNetConfig config;
  config.name = "test";
  config.input_size = 32;
  config.input_channels = 3;
  config.conv1_channels = 8;
  // Squeeze widths below 4 make dead-ReLU collapse likely; keep the test
  // profile narrow but trainable.
  config.fires = {FireConfig{4, 8}, FireConfig{4, 8}, FireConfig{4, 16},
                  FireConfig{4, 16}, FireConfig{8, 32}, FireConfig{8, 32}};
  config.classes = 2;
  return config;
}

Network BuildPercivalNet(const PercivalNetConfig& config) {
  Rng rng(config.init_seed);
  Network net;
  // Convolution 1 + maxpool (Fig. 3: maxpool after the first conv).
  net.Add<Conv2D>(config.input_channels, config.conv1_channels, 3, 2, 1, rng, "conv1");
  net.Add<Relu>();
  net.Add<MaxPool2D>(2, 2);
  // Six fire modules, downsampling after every two (Fig. 3: "we down-sample
  // the feature maps at regular intervals").
  int channels = config.conv1_channels;
  for (int i = 0; i < 6; ++i) {
    const FireConfig& fire = config.fires[static_cast<size_t>(i)];
    net.Add<FireModule>(channels, fire.squeeze, fire.expand, rng,
                        "fire" + std::to_string(i + 1));
    channels = 2 * fire.expand;
    if (i % 2 == 1 && i < 5) {
      net.Add<MaxPool2D>(2, 2);
    }
  }
  // Final convolution head + global average pooling (SoftMax is applied by
  // the loss during training and by the classifier at inference).
  net.Add<Conv2D>(channels, config.classes, 1, 1, 0, rng, "conv_final");
  net.Add<GlobalAvgPool>();
  return net;
}

Network BuildOriginalSqueezeNet(int input_channels, int classes, uint64_t seed) {
  Rng rng(seed);
  Network net;
  net.Add<Conv2D>(input_channels, 96, 7, 2, 3, rng, "conv1");
  net.Add<Relu>();
  net.Add<MaxPool2D>(3, 2);
  net.Add<FireModule>(96, 16, 64, rng, "fire2");
  net.Add<FireModule>(128, 16, 64, rng, "fire3");
  net.Add<FireModule>(128, 32, 128, rng, "fire4");
  net.Add<MaxPool2D>(3, 2);
  net.Add<FireModule>(256, 32, 128, rng, "fire5");
  net.Add<FireModule>(256, 48, 192, rng, "fire6");
  net.Add<FireModule>(384, 48, 192, rng, "fire7");
  net.Add<FireModule>(384, 64, 256, rng, "fire8");
  net.Add<MaxPool2D>(3, 2);
  net.Add<FireModule>(512, 64, 256, rng, "fire9");
  net.Add<Conv2D>(512, classes, 1, 1, 0, rng, "conv10");
  net.Add<GlobalAvgPool>();
  return net;
}

}  // namespace percival
