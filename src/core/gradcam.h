// Grad-CAM salience mapping (§5.6, Fig. 4): highlights the image regions
// that drive the ad / non-ad prediction.
#ifndef PERCIVAL_SRC_CORE_GRADCAM_H_
#define PERCIVAL_SRC_CORE_GRADCAM_H_

#include <string>

#include "src/img/bitmap.h"
#include "src/nn/network.h"

namespace percival {

// Computes the Grad-CAM heat map of `target_class` at the output of layer
// `layer_index` (0-based; choose a fire module). Returns a {1, h, w, 1}
// tensor of non-negative saliences at that layer's spatial resolution.
Tensor GradCam(Network& network, const Tensor& input, size_t layer_index, int target_class);

// Renders a heat map as a coarse ASCII intensity plot for logs/benches.
std::string RenderHeatmapAscii(const Tensor& heatmap, int max_width = 32);

// Upsamples the heat map to the source image size and tints hot regions red.
Bitmap OverlayHeatmap(const Bitmap& source, const Tensor& heatmap);

}  // namespace percival

#endif  // PERCIVAL_SRC_CORE_GRADCAM_H_
