#include "src/core/model_zoo.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/base/logging.h"
#include "src/nn/serialize.h"

namespace percival {

namespace {

std::string DefaultDirectory() {
  const char* env = std::getenv("PERCIVAL_MODEL_DIR");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  return "percival_model_cache";
}

}  // namespace

ModelZoo::ModelZoo() : ModelZoo(DefaultDirectory()) {}

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string ModelZoo::CheckpointPath(const std::string& name) const {
  return directory_ + "/" + name + ".pcvw";
}

std::string ModelZoo::QuantizedPath(const std::string& name) const {
  return directory_ + "/" + name + ".int8.pcvw";
}

bool ModelZoo::HasCached(const std::string& name) const {
  std::error_code ec;
  return std::filesystem::exists(CheckpointPath(name), ec) ||
         std::filesystem::exists(QuantizedPath(name), ec);
}

namespace {

// Loads `path` into `net`, separating "no file" (expected cache miss) from
// "file exists but failed to parse" (corruption — a defined, logged failure
// mode: the caller falls through to the next source or retrains, it never
// serves a half-loaded network because DeserializeWeights is atomic).
bool LoadCached(Network& net, const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return false;
  }
  if (LoadWeightsFromFile(net, path)) {
    return true;
  }
  LogLine("model zoo: CORRUPT cached artifact at " + path +
          " (parse rejected); ignoring it and falling back");
  return false;
}

}  // namespace

Network ModelZoo::GetOrTrain(const std::string& name, const PercivalNetConfig& config,
                             const std::function<void(Network&)>& train) {
  Network net = BuildPercivalNet(config);
  // DeserializeWeights sniffs the PCVW version, so whichever format sits at
  // the checkpoint path loads; a deployment cache holding only the small
  // int8 artifact is also accepted.
  const std::string path = CheckpointPath(name);
  if (LoadCached(net, path)) {
    LogLine("model zoo: loaded '" + name + "' from " + path);
    return net;
  }
  const std::string quantized_path = QuantizedPath(name);
  if (LoadCached(net, quantized_path)) {
    LogLine("model zoo: loaded int8 artifact '" + name + "' from " + quantized_path);
    return net;
  }
  LogLine("model zoo: training '" + name + "' (no usable cache at " + path + ")");
  train(net);
  if (!SaveWeightsToFile(net, path)) {
    LogLine("model zoo: warning, could not save '" + name + "' to " + path);
  }
  return net;
}

std::string ModelZoo::SaveQuantized(const std::string& name, Network& net) {
  const std::string path = QuantizedPath(name);
  if (!SaveWeightsToFileInt8(net, path)) {
    LogLine("model zoo: warning, could not save int8 artifact '" + name + "' to " + path);
    return std::string();
  }
  return path;
}

void ModelZoo::Evict(const std::string& name) {
  std::remove(CheckpointPath(name).c_str());
  std::remove(QuantizedPath(name).c_str());
}

}  // namespace percival
