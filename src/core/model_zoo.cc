#include "src/core/model_zoo.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/base/logging.h"
#include "src/nn/serialize.h"

namespace percival {

namespace {

std::string DefaultDirectory() {
  const char* env = std::getenv("PERCIVAL_MODEL_DIR");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  return "percival_model_cache";
}

}  // namespace

ModelZoo::ModelZoo() : ModelZoo(DefaultDirectory()) {}

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string ModelZoo::PathFor(const std::string& name) const {
  return directory_ + "/" + name + ".pcvw";
}

std::string ModelZoo::QuantizedPathFor(const std::string& name) const {
  return directory_ + "/" + name + ".int8.pcvw";
}

Network ModelZoo::GetOrTrain(const std::string& name, const PercivalNetConfig& config,
                             const std::function<void(Network&)>& train) {
  Network net = BuildPercivalNet(config);
  // DeserializeWeights sniffs the PCVW version, so whichever format sits at
  // the checkpoint path loads; a deployment cache holding only the small
  // int8 artifact is also accepted.
  const std::string path = PathFor(name);
  if (LoadWeightsFromFile(net, path)) {
    LogLine("model zoo: loaded '" + name + "' from " + path);
    return net;
  }
  const std::string quantized_path = QuantizedPathFor(name);
  if (LoadWeightsFromFile(net, quantized_path)) {
    LogLine("model zoo: loaded int8 artifact '" + name + "' from " + quantized_path);
    return net;
  }
  LogLine("model zoo: training '" + name + "' (no cache at " + path + ")");
  train(net);
  if (!SaveWeightsToFile(net, path)) {
    LogLine("model zoo: warning, could not save '" + name + "' to " + path);
  }
  return net;
}

std::string ModelZoo::SaveQuantized(const std::string& name, Network& net) {
  const std::string path = QuantizedPathFor(name);
  if (!SaveWeightsToFileInt8(net, path)) {
    LogLine("model zoo: warning, could not save int8 artifact '" + name + "' to " + path);
    return std::string();
  }
  return path;
}

void ModelZoo::Evict(const std::string& name) {
  std::remove(PathFor(name).c_str());
  std::remove(QuantizedPathFor(name).c_str());
}

}  // namespace percival
