#include "src/core/model_zoo.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/base/logging.h"
#include "src/nn/serialize.h"

namespace percival {

namespace {

std::string DefaultDirectory() {
  const char* env = std::getenv("PERCIVAL_MODEL_DIR");
  if (env != nullptr && env[0] != '\0') {
    return env;
  }
  return "percival_model_cache";
}

}  // namespace

ModelZoo::ModelZoo() : ModelZoo(DefaultDirectory()) {}

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string ModelZoo::PathFor(const std::string& name) const {
  return directory_ + "/" + name + ".pcvw";
}

Network ModelZoo::GetOrTrain(const std::string& name, const PercivalNetConfig& config,
                             const std::function<void(Network&)>& train) {
  Network net = BuildPercivalNet(config);
  const std::string path = PathFor(name);
  if (LoadWeightsFromFile(net, path)) {
    LogLine("model zoo: loaded '" + name + "' from " + path);
    return net;
  }
  LogLine("model zoo: training '" + name + "' (no cache at " + path + ")");
  train(net);
  if (!SaveWeightsToFile(net, path)) {
    LogLine("model zoo: warning, could not save '" + name + "' to " + path);
  }
  return net;
}

void ModelZoo::Evict(const std::string& name) { std::remove(PathFor(name).c_str()); }

}  // namespace percival
