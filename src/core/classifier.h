// AdClassifier: the PERCIVAL detection module.
//
// Wraps the CNN behind the ImageInterceptor interface so it can sit at the
// rendering pipeline's decode/raster choke point (§3). Two deployment modes
// from §1.1/§2.2 are provided:
//   * synchronous — classify in the critical path, block before paint;
//   * asynchronous — never delay the current paint: a frame whose
//     classification is not yet memoized renders immediately while its
//     result is computed and cached for subsequent visits.
#ifndef PERCIVAL_SRC_CORE_CLASSIFIER_H_
#define PERCIVAL_SRC_CORE_CLASSIFIER_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/thread_pool.h"
#include "src/core/model.h"
#include "src/img/bitmap.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/renderer/image_pipeline.h"

namespace percival {

struct ClassifyResult {
  bool is_ad = false;
  float ad_probability = 0.0f;
  double latency_ms = 0.0;
};

struct ClassifierStats {
  int64_t classified = 0;
  int64_t blocked = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Classifications whose preprocessing went straight to uint8 codes (the
  // int8 u8-direct path) — no float staging tensor existed for these.
  int64_t u8_direct = 0;
  // Memo lookups whose 64-bit pixel hash matched a cached entry but whose
  // verification hash did not — a genuine collision. The colliding frame is
  // re-classified instead of inheriting the cached decision.
  int64_t hash_collisions = 0;
  double total_latency_ms = 0.0;
  double MeanLatencyMs() const {
    return classified == 0 ? 0.0 : total_latency_ms / static_cast<double>(classified);
  }
};

class AdClassifier : public ImageInterceptor {
 public:
  // Takes ownership of a trained network built from `config`. `threshold`
  // is the ad-probability above which a frame is blocked. The network is
  // switched to eval mode (frozen deployment: forwards retain no backward
  // state); callers that want to keep training it should do so on their own
  // Network copy, or call network().SetTrainingMode(true).
  AdClassifier(Network network, const PercivalNetConfig& config, float threshold = 0.5f);

  // Switches the deployed network between float32 and int8 inference and
  // re-plans the forward workspace. Thread-safe with concurrent Classify().
  void SetPrecision(Precision precision);
  Precision precision() const;

  // Loads a PCVW weight file (either format) into the deployed network.
  // A v2 int8 artifact flips the classifier to int8 inference — its
  // pre-quantized codes feed the pack cache directly (or, for an artifact
  // quantized under a wider clamp than this build supports, the weights
  // requantize locally), so this is THE deployment path for the 4x-smaller
  // shipped model; a v1 float checkpoint restores float32. Returns false
  // (network untouched, mode unchanged) on a missing or corrupt file.
  // Thread-safe with Classify().
  bool LoadWeights(const std::string& path);

  // Runs one forward pass on `image` (resized to the profile's input).
  // Thread-safe: the network's forward state is guarded by a mutex, which
  // mirrors one classifier instance shared across raster workers.
  ClassifyResult Classify(const Bitmap& image);

  // Classifies `images` in one stacked forward pass. Preprocessing fans out
  // over the inference pool, and the batched GEMM path sees a taller patch
  // matrix (better parallelism + weight-packing amortization) than `size`
  // sequential Classify() calls. Latency is accounted per image (elapsed /
  // batch), so stats().MeanLatencyMs() stays comparable with Classify().
  std::vector<ClassifyResult> ClassifyBatch(const std::vector<const Bitmap*>& images);

  // ImageInterceptor: synchronous blocking decision.
  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override;

  // Skips classification of tiny decorative images (spacers, icons): the
  // paper's slot sizes start around 100px on the short edge.
  void set_min_dimension(int pixels) { min_dimension_ = pixels; }

  // u8-direct preprocessing: in int8 mode the classifier resizes bitmaps
  // straight to uint8 activation codes (BitmapToTensorU8Into) and feeds the
  // network's first conv through Network::ForwardQuantized — the classify
  // path never materializes the float staging tensor, skips the first
  // conv's MinMaxRange + QuantizeActivations sweeps, and is bit-identical
  // to the float-then-quantize pipeline (the first conv's input calibration
  // pins one shared quantization; [0, 1] — the range BitmapToTensor output
  // always lies in — is installed when the artifact carried none). On by
  // default; the knob exists for A/B measurement and parity tests.
  void set_use_u8_direct(bool enabled);
  bool u8_direct_active() const;

  const PercivalNetConfig& config() const { return config_; }
  Network& network() { return network_; }
  ClassifierStats stats() const;
  void ResetStats();

 private:
  // Recomputes the u8-direct state after a precision or weight change.
  // Caller holds mutex_ (or is the constructor).
  void RefreshU8DirectLocked();

  // One coherent read of the u8-direct state, taken before preprocessing
  // runs outside the network lock. The quantization is derived from the
  // first conv's LIVE input calibration (InputQuantLocked), never cached,
  // so calibration changes made through network() are always picked up.
  // StaleLocked() re-checks the snapshot once the lock is held: a
  // concurrent SetPrecision/LoadWeights/calibration change between the two
  // points invalidates the prepared codes, and the caller falls back to
  // float preprocessing. Both Classify() and ClassifyBatch() share this
  // protocol so the staleness invariant lives in exactly one place.
  struct U8DirectSnapshot {
    bool active = false;
    float scale = 1.0f;
    int32_t zero_point = 0;
  };
  ActivationQuant InputQuantLocked() const;
  U8DirectSnapshot SnapshotU8Direct() const;
  bool U8SnapshotStaleLocked(const U8DirectSnapshot& snapshot) const;
  QuantizedTensorView MakeU8View(const U8DirectSnapshot& snapshot, const uint8_t* codes,
                                 int batch) const;

  PercivalNetConfig config_;
  Network network_;
  float threshold_;
  Precision precision_ = Precision::kFloat32;
  int min_dimension_ = 0;
  mutable std::mutex mutex_;
  ClassifierStats stats_;
  // u8-direct state (guarded by mutex_): whether the next classification
  // may preprocess straight to uint8. The input quantization is NOT stored
  // here — it is re-derived from the first conv's calibration per snapshot.
  bool use_u8_direct_ = true;
  bool u8_direct_active_ = false;
};

// Asynchronous deployment wrapper with result memoization (§2.2's
// "classifying images asynchronously... allows for memoization of the
// results"). Keyed by a hash of the decoded pixels, so the same creative
// served under a different URL still hits.
class AsyncAdClassifier : public ImageInterceptor {
 public:
  explicit AsyncAdClassifier(AdClassifier& inner) : inner_(inner) {}

  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override;

  // Replaces the primary 64-bit pixel hash (tests force collisions with a
  // deliberately weak hash; the seeded verification hash must then keep
  // distinct creatives from sharing one memoized decision).
  using HashFn = uint64_t (*)(const void* data, size_t size);
  void SetPrimaryHashForTest(HashFn fn);

  // Runs any pending classifications (the "async worker" drained between
  // frames); in a browser this happens off the critical path. Pending frames
  // are grouped into ClassifyBatch() calls of `batch_size`; when `pool` is
  // non-null the batches are processed by the pool's workers, so one batch
  // preprocesses while another runs its forward pass. Each queued pixel hash
  // is classified exactly once even when frames with the same content arrive
  // while a drain is in flight.
  void DrainPending(ThreadPool* pool = nullptr, int batch_size = 16);

  int64_t cache_size() const;
  ClassifierStats stats() const;

 private:
  // A memo entry keeps the independent verification hash of the pixels it
  // was computed from: a primary-hash match alone is not proof of payload
  // equality, and inheriting a decision across a collision would block (or
  // pass) the wrong creative. See ClassifierStats::hash_collisions.
  struct MemoEntry {
    uint64_t verify = 0;
    bool is_ad = false;
  };
  struct PendingFrame {
    uint64_t key = 0;     // primary hash
    uint64_t verify = 0;  // seeded verification hash
    Bitmap pixels;
  };

  AdClassifier& inner_;
  mutable std::mutex mutex_;
  HashFn primary_hash_ = &HashBytes;
  std::unordered_map<uint64_t, MemoEntry> memo_;
  // Combined (primary, verify) keys either queued in pending_ or being
  // classified by an in-flight drain; blocks duplicate work for repeated
  // creatives without letting a primary-hash collision alias two of them.
  std::unordered_set<uint64_t> in_flight_;
  std::vector<PendingFrame> pending_;
  ClassifierStats stats_;
};

// Test hook: capacity (bytes) of the calling thread's u8 preprocessing
// code buffer. The buffer is shared by Classify/ClassifyBatch and shrinks
// when the required size drops well below its capacity, so a burst of large
// batches no longer pins peak memory for the life of the thread.
size_t ClassifierCodeBufferCapacity();

}  // namespace percival

#endif  // PERCIVAL_SRC_CORE_CLASSIFIER_H_
