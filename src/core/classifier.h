// AdClassifier: the PERCIVAL detection module.
//
// Wraps the CNN behind the ImageInterceptor interface so it can sit at the
// rendering pipeline's decode/raster choke point (§3). Two deployment modes
// from §1.1/§2.2 are provided:
//   * synchronous — classify in the critical path, block before paint;
//   * asynchronous — never delay the current paint: a frame whose
//     classification is not yet memoized renders immediately while its
//     result is computed and cached for subsequent visits.
#ifndef PERCIVAL_SRC_CORE_CLASSIFIER_H_
#define PERCIVAL_SRC_CORE_CLASSIFIER_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/thread_pool.h"
#include "src/core/model.h"
#include "src/img/bitmap.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/renderer/image_pipeline.h"

namespace percival {

struct ClassifyResult {
  bool is_ad = false;
  float ad_probability = 0.0f;
  double latency_ms = 0.0;
};

// Overload-hardening knobs for the serving path. One struct carries every
// policy so a deployment configures the whole degradation ladder in one
// place; the defaults reproduce the paper's semantics (classify everything,
// never block a paint) with generous-but-finite memory bounds.
//
// The ladder, from healthy to degraded:
//   1. admit      — frame queued for off-critical-path classification;
//   2. coalesce   — duplicate of an already queued/in-flight creative:
//                   renders now, classified once (stats().coalesced);
//   3. shed       — pending queue at max_pending (or the
//                   classifier.queue.saturate fault armed): the frame
//                   renders unclassified and is NOT queued — fail-open, the
//                   paper's async contract (stats().shed);
//   4. evict      — memo at max_memo_entries: CLOCK second-chance eviction
//                   keeps the hot set and bounds memory (stats().evicted);
//   5. degrade    — degrade_after_misses consecutive over-deadline drain
//                   batches trip a fail-open state: every uncached frame is
//                   shed without queueing until recover_after_frames frames
//                   have passed, then admission resumes with a clean miss
//                   counter (stats().degraded_frames / degrade_transitions).
struct ServingPolicy {
  // ---- bounded admission (AsyncAdClassifier) ----
  // Pending-queue capacity; a frame arriving with the queue full is shed.
  // 0 = unbounded (pre-hardening behavior).
  size_t max_pending = 256;
  // Memo-cache capacity in entries; insertion at capacity evicts via CLOCK
  // second-chance (a hit sets the entry's reference bit; the sweep evicts
  // the first unreferenced entry). 0 = unbounded.
  size_t max_memo_entries = 4096;

  // ---- deadlines ----
  // Soft per-classification deadline: a classification that takes longer
  // still completes (soft — the result is not discarded) but counts a
  // deadline miss, which feeds the degrade ladder. <= 0 disables.
  double classify_deadline_ms = 0.0;
  // Default time budget for DrainPending when the caller passes none:
  // the drain stops between batches once the budget is spent and leaves the
  // remaining frames queued for the next drain. <= 0 = unlimited.
  double drain_budget_ms = 0.0;

  // ---- graceful degradation ----
  // Consecutive over-deadline drain batches that trip the degrade state.
  // <= 0 disables degradation entirely.
  int degrade_after_misses = 8;
  // Frames observed while degraded before the classifier self-heals and
  // resumes admission.
  int recover_after_frames = 64;

  // ---- reload ----
  // LoadWeightsWithRetry: retries after the initial failed attempt, with
  // exponential backoff starting at reload_backoff_ms (doubling each time).
  int reload_max_retries = 3;
  double reload_backoff_ms = 0.5;
};

struct ClassifierStats {
  int64_t classified = 0;
  int64_t blocked = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  // Classifications whose preprocessing went straight to uint8 codes (the
  // int8 u8-direct path) — no float staging tensor existed for these.
  int64_t u8_direct = 0;
  // Memo lookups whose 64-bit pixel hash matched a cached entry but whose
  // verification hash did not — a genuine collision. The colliding frame is
  // re-classified instead of inheriting the cached decision.
  int64_t hash_collisions = 0;
  // ---- overload observability (see ServingPolicy's ladder) ----
  // Frames refused admission (queue full, saturation fault, or degraded):
  // they rendered unclassified and were not queued.
  int64_t shed = 0;
  // Frames whose creative was already queued or in an in-flight drain: they
  // rendered immediately and ride the existing classification.
  int64_t coalesced = 0;
  // Memo entries evicted by the CLOCK sweep to stay under max_memo_entries.
  int64_t evicted = 0;
  // Classifications (sync) / drain batches (async) that exceeded the soft
  // classify_deadline_ms.
  int64_t deadline_misses = 0;
  // Frames that arrived while the degrade state was active.
  int64_t degraded_frames = 0;
  // Degrade state changes, entering and leaving each counting one — an even
  // value means the classifier is currently healthy.
  int64_t degrade_transitions = 0;
  // Reload attempts beyond the first in LoadWeightsWithRetry.
  int64_t reload_retries = 0;
  // Classifications that failed open (not-ad, probability 0) because the
  // forward pass could not allocate scratch memory.
  int64_t alloc_failovers = 0;
  double total_latency_ms = 0.0;
  double MeanLatencyMs() const {
    return classified == 0 ? 0.0 : total_latency_ms / static_cast<double>(classified);
  }
};

class AdClassifier : public ImageInterceptor {
 public:
  // Takes ownership of a trained network built from `config`. `threshold`
  // is the ad-probability above which a frame is blocked. The network is
  // switched to eval mode (frozen deployment: forwards retain no backward
  // state); callers that want to keep training it should do so on their own
  // Network copy, or call network().SetTrainingMode(true).
  AdClassifier(Network network, const PercivalNetConfig& config, float threshold = 0.5f);

  // Switches the deployed network between float32 and int8 inference and
  // re-plans the forward workspace. Thread-safe with concurrent Classify().
  void SetPrecision(Precision precision);
  Precision precision() const;

  // Loads a PCVW weight file (either format) into the deployed network.
  // A v2 int8 artifact flips the classifier to int8 inference — its
  // pre-quantized codes feed the pack cache directly (or, for an artifact
  // quantized under a wider clamp than this build supports, the weights
  // requantize locally), so this is THE deployment path for the 4x-smaller
  // shipped model; a v1 float checkpoint restores float32. Returns false
  // (network untouched, mode unchanged) on a missing or corrupt file.
  // Thread-safe with Classify().
  bool LoadWeights(const std::string& path);

  // LoadWeights with retry + exponential backoff per the serving policy:
  // a transiently unreadable or corrupt artifact (an updater mid-write, a
  // torn download) is retried reload_max_retries times, sleeping
  // reload_backoff_ms * 2^k between attempts and counting
  // stats().reload_retries. Every failed attempt leaves the previous good
  // network serving — LoadWeights stages and validates the whole artifact
  // before committing anything — so a permanently corrupt file degrades to
  // "keep classifying with the prior weights", never to a half-loaded
  // model.
  bool LoadWeightsWithRetry(const std::string& path);

  // Installs the serving policy (deadline + reload knobs apply to this
  // classifier; the admission/degrade knobs are read by the async wrapper's
  // own policy). Thread-safe.
  void SetServingPolicy(const ServingPolicy& policy);
  ServingPolicy serving_policy() const;

  // Runs one forward pass on `image` (resized to the profile's input).
  // Thread-safe: the network's forward state is guarded by a mutex, which
  // mirrors one classifier instance shared across raster workers.
  //
  // Failure modes are defined, never undefined: a forward pass that cannot
  // allocate scratch memory fails OPEN (is_ad = false, probability 0,
  // stats().alloc_failovers) — the paper's contract is "never delay the
  // current paint", and an ad slipping through is the recoverable error. A
  // classification exceeding serving_policy().classify_deadline_ms still
  // returns its result but counts stats().deadline_misses.
  ClassifyResult Classify(const Bitmap& image);

  // Classifies `images` in one stacked forward pass. Preprocessing fans out
  // over the inference pool, and the batched GEMM path sees a taller patch
  // matrix (better parallelism + weight-packing amortization) than `size`
  // sequential Classify() calls. Latency is accounted per image (elapsed /
  // batch), so stats().MeanLatencyMs() stays comparable with Classify().
  std::vector<ClassifyResult> ClassifyBatch(const std::vector<const Bitmap*>& images);

  // ImageInterceptor: synchronous blocking decision.
  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override;

  // Skips classification of tiny decorative images (spacers, icons): the
  // paper's slot sizes start around 100px on the short edge.
  void set_min_dimension(int pixels) { min_dimension_ = pixels; }

  // u8-direct preprocessing: in int8 mode the classifier resizes bitmaps
  // straight to uint8 activation codes (BitmapToTensorU8Into) and feeds the
  // network's first conv through Network::ForwardQuantized — the classify
  // path never materializes the float staging tensor, skips the first
  // conv's MinMaxRange + QuantizeActivations sweeps, and is bit-identical
  // to the float-then-quantize pipeline (the first conv's input calibration
  // pins one shared quantization; [0, 1] — the range BitmapToTensor output
  // always lies in — is installed when the artifact carried none). On by
  // default; the knob exists for A/B measurement and parity tests.
  void set_use_u8_direct(bool enabled);
  bool u8_direct_active() const;

  const PercivalNetConfig& config() const { return config_; }
  Network& network() { return network_; }
  ClassifierStats stats() const;
  void ResetStats();

 private:
  // Recomputes the u8-direct state after a precision or weight change.
  // Caller holds mutex_ (or is the constructor).
  void RefreshU8DirectLocked();

  // One coherent read of the u8-direct state, taken before preprocessing
  // runs outside the network lock. The quantization is derived from the
  // first conv's LIVE input calibration (InputQuantLocked), never cached,
  // so calibration changes made through network() are always picked up.
  // StaleLocked() re-checks the snapshot once the lock is held: a
  // concurrent SetPrecision/LoadWeights/calibration change between the two
  // points invalidates the prepared codes, and the caller falls back to
  // float preprocessing. Both Classify() and ClassifyBatch() share this
  // protocol so the staleness invariant lives in exactly one place.
  struct U8DirectSnapshot {
    bool active = false;
    float scale = 1.0f;
    int32_t zero_point = 0;
  };
  ActivationQuant InputQuantLocked() const;
  U8DirectSnapshot SnapshotU8Direct() const;
  bool U8SnapshotStaleLocked(const U8DirectSnapshot& snapshot) const;
  QuantizedTensorView MakeU8View(const U8DirectSnapshot& snapshot, const uint8_t* codes,
                                 int batch) const;

  PercivalNetConfig config_;
  Network network_;
  float threshold_;
  Precision precision_ = Precision::kFloat32;
  int min_dimension_ = 0;
  mutable std::mutex mutex_;
  ServingPolicy policy_;
  ClassifierStats stats_;
  // u8-direct state (guarded by mutex_): whether the next classification
  // may preprocess straight to uint8. The input quantization is NOT stored
  // here — it is re-derived from the first conv's calibration per snapshot.
  bool use_u8_direct_ = true;
  bool u8_direct_active_ = false;
};

// Asynchronous deployment wrapper with result memoization (§2.2's
// "classifying images asynchronously... allows for memoization of the
// results"). Keyed by a hash of the decoded pixels, so the same creative
// served under a different URL still hits.
//
// Overload-hardened: admission is bounded (ServingPolicy::max_pending, with
// an explicit admit / coalesce / shed ladder), the memo cache is capped
// with CLOCK eviction (max_memo_entries), drains honor a time budget, and
// sustained deadline misses trip a fail-open degrade state that self-heals.
// Every transition is observable through stats(); under any failure the
// wrapper's answer stays "render now" — overload can never block a paint.
class AsyncAdClassifier : public ImageInterceptor {
 public:
  explicit AsyncAdClassifier(AdClassifier& inner) : inner_(inner) {}

  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override;

  // Replaces the primary 64-bit pixel hash (tests force collisions with a
  // deliberately weak hash; the seeded verification hash must then keep
  // distinct creatives from sharing one memoized decision).
  using HashFn = uint64_t (*)(const void* data, size_t size);
  void SetPrimaryHashForTest(HashFn fn);

  // Installs the wrapper's serving policy. Applies to admission, eviction,
  // drain budgeting, and the degrade ladder of THIS wrapper only — the
  // inner classifier's deadline/reload knobs are set through its own
  // SetServingPolicy (deliberately uncoupled: the inner classifier may be
  // shared with a synchronous deployment). Shrinking max_memo_entries
  // evicts down to the new cap immediately.
  void SetServingPolicy(const ServingPolicy& policy);
  ServingPolicy serving_policy() const;

  // Runs pending classifications (the "async worker" drained between
  // frames); in a browser this happens off the critical path. Pending
  // frames are grouped into ClassifyBatch() calls of `batch_size` (clamped
  // to >= 1); when `pool` is non-null and the drain is unbudgeted, batches
  // are processed by the pool's workers, so one batch preprocesses while
  // another runs its forward pass. Each queued pixel hash is classified
  // exactly once even when frames with the same content arrive while a
  // drain is in flight.
  //
  // `budget_ms` bounds the drain: the budget is checked BETWEEN batches (at
  // least one batch always runs, so a drain always makes progress) and any
  // unprocessed frames stay queued, in order, for the next drain — an
  // overloaded queue never overruns the frame budget it is drained from.
  // budget_ms < 0 (the default) uses ServingPolicy::drain_budget_ms;
  // 0 means unlimited.
  void DrainPending(ThreadPool* pool = nullptr, int batch_size = 16,
                    double budget_ms = -1.0);

  // Observability: memoized entries, queued frames, and the degrade state.
  int64_t cache_size() const;
  int64_t pending_size() const;
  bool degraded() const;
  // One coherent snapshot: every counter is read under the same lock, so
  // cross-counter invariants (hits + misses == lookups; shed + coalesced <=
  // misses) hold within a snapshot even while other threads classify.
  ClassifierStats stats() const;

 private:
  // A memo slot keeps the independent verification hash of the pixels it
  // was computed from: a primary-hash match alone is not proof of payload
  // equality, and inheriting a decision across a collision would block (or
  // pass) the wrong creative. See ClassifierStats::hash_collisions.
  // `referenced` is the CLOCK bit: set on every hit, cleared by the
  // eviction sweep — one bit of recency is enough to keep the fleet's hot
  // creatives resident through a flood of one-off uniques.
  struct MemoSlot {
    uint64_t key = 0;
    uint64_t verify = 0;
    bool is_ad = false;
    bool referenced = false;
  };
  struct PendingFrame {
    uint64_t key = 0;     // primary hash
    uint64_t verify = 0;  // seeded verification hash
    Bitmap pixels;
  };

  // All require mutex_ held.
  void MemoInsertLocked(uint64_t key, uint64_t verify, bool is_ad);
  void MemoEvictOneLocked();
  // Per-drained-batch deadline accounting: feeds consecutive misses into
  // the degrade trip wire.
  void NoteBatchLatencyLocked(double per_image_ms);

  AdClassifier& inner_;
  mutable std::mutex mutex_;
  HashFn primary_hash_ = &HashBytes;
  ServingPolicy policy_;
  // CLOCK ring (compact vector + index). Eviction swap-removes, so the ring
  // stays dense and memory is bounded by max_memo_entries exactly.
  std::vector<MemoSlot> memo_slots_;
  std::unordered_map<uint64_t, size_t> memo_index_;
  size_t clock_hand_ = 0;
  // Combined (primary, verify) keys either queued in pending_ or being
  // classified by an in-flight drain; blocks duplicate work for repeated
  // creatives without letting a primary-hash collision alias two of them.
  std::unordered_set<uint64_t> in_flight_;
  std::vector<PendingFrame> pending_;
  // Degrade ladder state: consecutive over-deadline drain batches, and the
  // frame countdown to self-heal once degraded.
  int consecutive_misses_ = 0;
  int frames_until_recovery_ = 0;
  bool degraded_ = false;
  ClassifierStats stats_;
};

// Test hook: capacity (bytes) of the calling thread's u8 preprocessing
// code buffer. The buffer is shared by Classify/ClassifyBatch and shrinks
// when the required size drops well below its capacity, so a burst of large
// batches no longer pins peak memory for the life of the thread.
size_t ClassifierCodeBufferCapacity();

}  // namespace percival

#endif  // PERCIVAL_SRC_CORE_CLASSIFIER_H_
