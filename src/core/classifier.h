// AdClassifier: the PERCIVAL detection module.
//
// Wraps the CNN behind the ImageInterceptor interface so it can sit at the
// rendering pipeline's decode/raster choke point (§3). Two deployment modes
// from §1.1/§2.2 are provided:
//   * synchronous — classify in the critical path, block before paint;
//   * asynchronous — never delay the current paint: a frame whose
//     classification is not yet memoized renders immediately while its
//     result is computed and cached for subsequent visits.
#ifndef PERCIVAL_SRC_CORE_CLASSIFIER_H_
#define PERCIVAL_SRC_CORE_CLASSIFIER_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/thread_pool.h"
#include "src/core/model.h"
#include "src/img/bitmap.h"
#include "src/nn/gemm.h"
#include "src/nn/network.h"
#include "src/renderer/image_pipeline.h"
#include "src/serve/engine.h"
#include "src/serve/policy.h"

namespace percival {

// ClassifyResult, ServingPolicy, and ClassifierStats moved to
// src/serve/policy.h (shared with the sans-IO ServingEngine and the shard
// router); this header re-exports them via the include above.

class AdClassifier : public ImageInterceptor {
 public:
  // Takes ownership of a trained network built from `config`. `threshold`
  // is the ad-probability above which a frame is blocked. The network is
  // switched to eval mode (frozen deployment: forwards retain no backward
  // state); callers that want to keep training it should do so on their own
  // Network copy, or call network().SetTrainingMode(true).
  AdClassifier(Network network, const PercivalNetConfig& config, float threshold = 0.5f);

  // Switches the deployed network between float32 and int8 inference and
  // re-plans the forward workspace. Thread-safe with concurrent Classify().
  void SetPrecision(Precision precision);
  Precision precision() const;

  // Loads a PCVW weight file (either format) into the deployed network.
  // A v2 int8 artifact flips the classifier to int8 inference — its
  // pre-quantized codes feed the pack cache directly (or, for an artifact
  // quantized under a wider clamp than this build supports, the weights
  // requantize locally), so this is THE deployment path for the 4x-smaller
  // shipped model; a v1 float checkpoint restores float32. Returns false
  // (network untouched, mode unchanged) on a missing or corrupt file.
  // Thread-safe with Classify().
  bool LoadWeights(const std::string& path);

  // LoadWeights with retry + exponential backoff per the serving policy:
  // a transiently unreadable or corrupt artifact (an updater mid-write, a
  // torn download) is retried reload_max_retries times, sleeping
  // reload_backoff_ms * 2^k between attempts and counting
  // stats().reload_retries. Every failed attempt leaves the previous good
  // network serving — LoadWeights stages and validates the whole artifact
  // before committing anything — so a permanently corrupt file degrades to
  // "keep classifying with the prior weights", never to a half-loaded
  // model. The retry/backoff SCHEDULE itself lives in the sans-IO
  // ServingEngine (caller-supplied time); this adapter contributes the file
  // reads, the stage-then-commit, and the real sleeps.
  bool LoadWeightsWithRetry(const std::string& path);

  // Installs the serving policy (deadline + reload knobs apply to this
  // classifier; the admission/degrade knobs are read by the async wrapper's
  // own policy). Thread-safe.
  void SetServingPolicy(const ServingPolicy& policy);
  ServingPolicy serving_policy() const;

  // Runs one forward pass on `image` (resized to the profile's input).
  // Thread-safe: the network's forward state is guarded by a mutex, which
  // mirrors one classifier instance shared across raster workers.
  //
  // Failure modes are defined, never undefined: a forward pass that cannot
  // allocate scratch memory fails OPEN (is_ad = false, probability 0,
  // stats().alloc_failovers) — the paper's contract is "never delay the
  // current paint", and an ad slipping through is the recoverable error. A
  // classification exceeding serving_policy().classify_deadline_ms still
  // returns its result but counts stats().deadline_misses.
  ClassifyResult Classify(const Bitmap& image);

  // Classifies `images` in one stacked forward pass. Preprocessing fans out
  // over the inference pool, and the batched GEMM path sees a taller patch
  // matrix (better parallelism + weight-packing amortization) than `size`
  // sequential Classify() calls. Latency is accounted per image (elapsed /
  // batch), so stats().MeanLatencyMs() stays comparable with Classify().
  std::vector<ClassifyResult> ClassifyBatch(const std::vector<const Bitmap*>& images);

  // ImageInterceptor: synchronous blocking decision.
  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override;

  // Skips classification of tiny decorative images (spacers, icons): the
  // paper's slot sizes start around 100px on the short edge.
  void set_min_dimension(int pixels) { min_dimension_ = pixels; }

  // u8-direct preprocessing: in int8 mode the classifier resizes bitmaps
  // straight to uint8 activation codes (BitmapToTensorU8Into) and feeds the
  // network's first conv through Network::ForwardQuantized — the classify
  // path never materializes the float staging tensor, skips the first
  // conv's MinMaxRange + QuantizeActivations sweeps, and is bit-identical
  // to the float-then-quantize pipeline (the first conv's input calibration
  // pins one shared quantization; [0, 1] — the range BitmapToTensor output
  // always lies in — is installed when the artifact carried none). On by
  // default; the knob exists for A/B measurement and parity tests.
  void set_use_u8_direct(bool enabled);
  bool u8_direct_active() const;

  const PercivalNetConfig& config() const { return config_; }
  Network& network() { return network_; }
  ClassifierStats stats() const;
  void ResetStats();

 private:
  // Recomputes the u8-direct state after a precision or weight change.
  // Caller holds mutex_ (or is the constructor).
  void RefreshU8DirectLocked();

  // The commit half of LoadWeights: stages `bytes` (already read — peek +
  // deserialize the SAME bytes, so a concurrent artifact swap on disk
  // cannot split the version sniff from the payload) and atomically flips
  // the deployed network on success. Returns false with the network
  // untouched on a rejected artifact.
  bool CommitWeightBytes(const std::vector<uint8_t>& bytes);

  // One coherent read of the u8-direct state, taken before preprocessing
  // runs outside the network lock. The quantization is derived from the
  // first conv's LIVE input calibration (InputQuantLocked), never cached,
  // so calibration changes made through network() are always picked up.
  // StaleLocked() re-checks the snapshot once the lock is held: a
  // concurrent SetPrecision/LoadWeights/calibration change between the two
  // points invalidates the prepared codes, and the caller falls back to
  // float preprocessing. Both Classify() and ClassifyBatch() share this
  // protocol so the staleness invariant lives in exactly one place.
  struct U8DirectSnapshot {
    bool active = false;
    float scale = 1.0f;
    int32_t zero_point = 0;
  };
  ActivationQuant InputQuantLocked() const;
  U8DirectSnapshot SnapshotU8Direct() const;
  bool U8SnapshotStaleLocked(const U8DirectSnapshot& snapshot) const;
  QuantizedTensorView MakeU8View(const U8DirectSnapshot& snapshot, const uint8_t* codes,
                                 int batch) const;

  PercivalNetConfig config_;
  Network network_;
  float threshold_;
  Precision precision_ = Precision::kFloat32;
  int min_dimension_ = 0;
  mutable std::mutex mutex_;
  ServingPolicy policy_;
  ClassifierStats stats_;
  // u8-direct state (guarded by mutex_): whether the next classification
  // may preprocess straight to uint8. The input quantization is NOT stored
  // here — it is re-derived from the first conv's calibration per snapshot.
  bool use_u8_direct_ = true;
  bool u8_direct_active_ = false;
};

// Asynchronous deployment wrapper with result memoization (§2.2's
// "classifying images asynchronously... allows for memoization of the
// results"). Keyed by a hash of the decoded pixels, so the same creative
// served under a different URL still hits.
//
// Since the sans-IO refactor this class is a thin ADAPTER over
// ServingEngine (src/serve/engine.h): every piece of serving state — the
// admit/coalesce/shed ladder, the two-tier memo cache with CLOCK eviction,
// drain budgets, the fail-open degrade state — lives in the engine, and
// this wrapper contributes exactly the runtime the engine refuses to own:
// a mutex (the engine is single-owner), the steady clock, retained copies
// of admitted frames (the engine never copies pixels), and ThreadPool
// execution of the batches the engine hands out. Decisions are bit-
// identical to the pre-refactor monolith (test-asserted); under any
// failure the answer stays "render now" — overload can never block a
// paint.
class AsyncAdClassifier : public ImageInterceptor {
 public:
  explicit AsyncAdClassifier(AdClassifier& inner) : inner_(inner) {}

  bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                      const std::string& source_url) override;

  // Replaces the primary 64-bit pixel hash (tests force collisions with a
  // deliberately weak hash; the seeded verification hash must then keep
  // distinct creatives from sharing one memoized decision).
  using HashFn = uint64_t (*)(const void* data, size_t size);
  void SetPrimaryHashForTest(HashFn fn);

  // Installs the wrapper's serving policy. Applies to admission, eviction,
  // drain budgeting, the near-duplicate tier, and the degrade ladder of
  // THIS wrapper only — the inner classifier's deadline/reload knobs are
  // set through its own SetServingPolicy (deliberately uncoupled: the
  // inner classifier may be shared with a synchronous deployment).
  // Shrinking a memo cap (either tier) evicts down immediately.
  void SetServingPolicy(const ServingPolicy& policy);
  ServingPolicy serving_policy() const;

  // Runs pending classifications (the "async worker" drained between
  // frames); in a browser this happens off the critical path. Pending
  // frames are grouped into ClassifyBatch() calls of `batch_size` (clamped
  // to >= 1); when `pool` is non-null and the drain is unbudgeted, batches
  // are processed by the pool's workers, so one batch preprocesses while
  // another runs its forward pass. Each queued pixel hash is classified
  // exactly once even when frames with the same content arrive while a
  // drain is in flight.
  //
  // `budget_ms` bounds the drain: the budget is checked BETWEEN batches (at
  // least one batch always runs, so a drain always makes progress) and any
  // unprocessed frames stay queued, in order, for the next drain — an
  // overloaded queue never overruns the frame budget it is drained from.
  // budget_ms < 0 (the default) uses ServingPolicy::drain_budget_ms;
  // 0 means unlimited.
  void DrainPending(ThreadPool* pool = nullptr, int batch_size = 16,
                    double budget_ms = -1.0);

  // Observability: memoized entries (per tier), queued frames, and the
  // degrade state.
  int64_t cache_size() const;
  int64_t near_dup_cache_size() const;
  int64_t pending_size() const;
  bool degraded() const;
  // One coherent snapshot: every counter is read under the same lock, so
  // cross-counter invariants (hits + misses == lookups; shed + coalesced <=
  // misses; near_dup_hits + near_dup_rejects == enabled-probe count) hold
  // within a snapshot even while other threads classify.
  ClassifierStats stats() const;

 private:
  // Runs one engine-issued batch through the inner classifier and reports
  // it back. Takes mutex_ internally around the engine calls only — the
  // forward pass itself runs unlocked (the inner classifier has its own
  // network lock), which is what lets pooled batches overlap.
  void RunBatch(const EngineBatch& batch);
  // Logs the engine's degrade transitions (the sans-IO engine never logs —
  // logging timestamps would be a hidden wall-clock read). Caller holds
  // mutex_; `was_degraded` is the state observed before the engine call.
  void LogDegradeTransitionLocked(bool was_degraded);

  AdClassifier& inner_;
  // Guards engine_ and buffers_ (the engine is deliberately not internally
  // synchronized). The engine supports one open drain at a time, so whole
  // drains are serialized by drain_mutex_; frame intake stays concurrent
  // with a running drain (mutex_ is released around each forward pass).
  mutable std::mutex mutex_;
  std::mutex drain_mutex_;
  ServingEngine engine_;
  // Retained pixels for admitted tickets — the buffer-ownership half of
  // the sans-IO contract. Erased when the ticket's batch completes (or
  // kept across drains for a budget-requeued frame). unordered_map node
  // storage keeps each Bitmap address stable while the engine holds its
  // pointer.
  std::unordered_map<uint64_t, Bitmap> buffers_;
};

// Test hook: capacity (bytes) of the calling thread's u8 preprocessing
// code buffer. The buffer is shared by Classify/ClassifyBatch and shrinks
// when the required size drops well below its capacity, so a burst of large
// batches no longer pins peak memory for the life of the thread.
size_t ClassifierCodeBufferCapacity();

}  // namespace percival

#endif  // PERCIVAL_SRC_CORE_CLASSIFIER_H_
