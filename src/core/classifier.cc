#include "src/core/classifier.h"

#include <algorithm>

#include "src/base/hash.h"
#include "src/base/stopwatch.h"
#include "src/img/resize.h"
#include "src/nn/activation.h"

namespace percival {

AdClassifier::AdClassifier(Network network, const PercivalNetConfig& config, float threshold)
    : config_(config), network_(std::move(network)), threshold_(threshold) {}

ClassifyResult AdClassifier::Classify(const Bitmap& image) {
  Stopwatch timer;
  Tensor input = BitmapToTensor(image, config_.input_size, config_.input_channels);
  ClassifyResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Tensor logits = network_.Forward(input);
    Softmax softmax;
    Tensor probs = softmax.Forward(logits);
    // Class 1 == ad by convention throughout the repo.
    result.ad_probability = probs.at(0, 0, 0, 1);
    result.is_ad = result.ad_probability >= threshold_;
    result.latency_ms = timer.ElapsedMs();
    ++stats_.classified;
    if (result.is_ad) {
      ++stats_.blocked;
    }
    stats_.total_latency_ms += result.latency_ms;
  }
  return result;
}

bool AdClassifier::OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                                  const std::string& source_url) {
  (void)source_url;
  if (min_dimension_ > 0 &&
      (info.width < min_dimension_ || info.height < min_dimension_)) {
    return false;
  }
  return Classify(pixels).is_ad;
}

ClassifierStats AdClassifier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AdClassifier::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ClassifierStats{};
}

bool AsyncAdClassifier::OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                                       const std::string& source_url) {
  (void)info;
  (void)source_url;
  const uint64_t key = HashBytes(pixels.data(), pixels.byte_size());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++stats_.cache_hits;
    return it->second;  // Memoized decision applies immediately.
  }
  ++stats_.cache_misses;
  // Not yet known: let the frame render now (no added latency) and queue
  // the pixels for off-critical-path classification.
  pending_.emplace_back(key, pixels);
  return false;
}

void AsyncAdClassifier::DrainPending() {
  std::vector<std::pair<uint64_t, Bitmap>> work;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    work.swap(pending_);
  }
  for (auto& [key, bitmap] : work) {
    const ClassifyResult result = inner_.Classify(bitmap);
    std::lock_guard<std::mutex> lock(mutex_);
    memo_[key] = result.is_ad;
  }
}

int64_t AsyncAdClassifier::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(memo_.size());
}

ClassifierStats AsyncAdClassifier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace percival
