#include "src/core/classifier.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <new>
#include <thread>

#include "src/base/faultpoint.h"
#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/stopwatch.h"
#include "src/img/resize.h"
#include "src/nn/activation.h"
#include "src/nn/gemm.h"
#include "src/nn/serialize.h"

namespace percival {

namespace {

// Per-thread u8 preprocessing buffer shared by Classify and ClassifyBatch
// (one thread never interleaves the two mid-classification). Previously two
// separate thread_local vectors ratcheted up to the largest frame/batch
// ever seen and kept that capacity for the thread's lifetime; sizing now
// goes through SizeCodeBuffer, which releases the excess once the required
// size drops below half the held capacity.
std::vector<uint8_t>& ThreadCodeBuffer() {
  thread_local std::vector<uint8_t> codes;
  return codes;
}

void SizeCodeBuffer(std::vector<uint8_t>& codes, size_t needed) {
  if (codes.capacity() > 2 * needed) {
    std::vector<uint8_t>(needed).swap(codes);
  } else {
    codes.resize(needed);
  }
}

// Seed for the memo's independent verification hash (any constant works;
// it only has to define a second FNV stream over the pixels).
constexpr uint64_t kVerifyHashSeed = 0x5CA1AB1EULL;

}  // namespace

size_t ClassifierCodeBufferCapacity() { return ThreadCodeBuffer().capacity(); }

AdClassifier::AdClassifier(Network network, const PercivalNetConfig& config, float threshold)
    : config_(config), network_(std::move(network)), threshold_(threshold) {
  LogSimdPathOnce();
  // Frozen deployment: eval mode stops every forward from capturing
  // backward state (ReLU masks, pool argmax, per-conv input copies).
  network_.SetTrainingMode(false);
  // Reserve the constructing thread's forward workspace now; a first
  // classification issued from another thread warms that thread's arena
  // organically (the plan is thread-local, see Network::PlanForward).
  network_.PlanForward(config_.InputShape());
  RefreshU8DirectLocked();
}

void AdClassifier::RefreshU8DirectLocked() {
  u8_direct_active_ = use_u8_direct_ && precision_ == Precision::kInt8 &&
                      network_.AcceptsQuantizedInput();
  if (!u8_direct_active_) {
    return;
  }
  // The classifier always feeds pixels / 255, so the network input lives in
  // [0, 1]. Pin that (or the artifact's calibrated range, when it shipped
  // one) as the first conv's input calibration: BOTH pipelines — u8-direct
  // and float-then-quantize — then derive one shared quantization from it,
  // which is what makes their classifications bit-identical. The
  // quantization itself is NOT cached here: snapshots re-derive it from the
  // conv's live calibration (see InputQuantLocked), so changing the
  // calibration later — e.g. a capture batch run on network() — keeps both
  // pipelines in lockstep instead of silently splitting them.
  float lo = 0.0f;
  float hi = 1.0f;
  if (!network_.layer(0).InputCalibration(&lo, &hi)) {
    const ActivationCalibration unit_range{0.0f, 1.0f, true};
    network_.layer(0).ConsumeCalibration(&unit_range, 1);
  }
  LogLine(std::string("classifier: u8-direct preprocessing on (") +
          network_.KernelPlanSummary() + ")");
}

ActivationQuant AdClassifier::InputQuantLocked() const {
  // [0, 1] matches the pin RefreshU8DirectLocked installs, so the fallback
  // only applies if someone cleared the calibration through network().
  float lo = 0.0f;
  float hi = 1.0f;
  network_.layer(0).InputCalibration(&lo, &hi);
  return ComputeActivationQuant(lo, hi);
}

void AdClassifier::SetPrecision(Precision precision) {
  std::lock_guard<std::mutex> lock(mutex_);
  precision_ = precision;
  network_.SetPrecision(precision);
  network_.PlanForward(config_.InputShape());
  RefreshU8DirectLocked();
}

Precision AdClassifier::precision() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return precision_;
}

void AdClassifier::set_use_u8_direct(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  use_u8_direct_ = enabled;
  RefreshU8DirectLocked();
}

bool AdClassifier::u8_direct_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return u8_direct_active_;
}

void AdClassifier::SetServingPolicy(const ServingPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
}

ServingPolicy AdClassifier::serving_policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

bool AdClassifier::LoadWeightsWithRetry(const std::string& path) {
  const ServingPolicy policy = serving_policy();
  const int retries = std::max(0, policy.reload_max_retries);
  double backoff_ms = std::max(0.0, policy.reload_backoff_ms);
  for (int attempt = 0;; ++attempt) {
    // LoadWeights itself is stage-then-commit, so every failed attempt —
    // including the last — leaves the previous good network serving.
    if (LoadWeights(path)) {
      return true;
    }
    if (attempt >= retries) {
      LogLine("classifier: reload of '" + path + "' failed after " +
              std::to_string(attempt + 1) +
              " attempt(s); keeping the previous weights");
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.reload_retries;
    }
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= 2.0;
    }
  }
}

bool AdClassifier::LoadWeights(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  // One read, then peek + deserialize the SAME bytes: re-opening the file
  // to sniff the version would race a concurrent artifact swap.
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes) || !DeserializeWeights(network_, bytes)) {
    return false;
  }
  // A v2 artifact runs on the int8 engine it was quantized for — keyed on
  // the file header, not on whether its payloads survived the clamp check:
  // a wider-clamp artifact on a narrower build still runs int8, just
  // requantized from the dequantized floats (the deserializer logs that).
  precision_ =
      PeekWeightsVersion(bytes) == 2 ? Precision::kInt8 : Precision::kFloat32;
  network_.SetPrecision(precision_);
  network_.PlanForward(config_.InputShape());
  RefreshU8DirectLocked();
  return true;
}

AdClassifier::U8DirectSnapshot AdClassifier::SnapshotU8Direct() const {
  std::lock_guard<std::mutex> lock(mutex_);
  U8DirectSnapshot snapshot;
  snapshot.active = u8_direct_active_;
  if (snapshot.active) {
    const ActivationQuant quant = InputQuantLocked();
    snapshot.scale = quant.scale;
    snapshot.zero_point = quant.zero_point;
  }
  return snapshot;
}

bool AdClassifier::U8SnapshotStaleLocked(const U8DirectSnapshot& snapshot) const {
  if (!u8_direct_active_) {
    return true;
  }
  const ActivationQuant quant = InputQuantLocked();
  return quant.scale != snapshot.scale || quant.zero_point != snapshot.zero_point;
}

QuantizedTensorView AdClassifier::MakeU8View(const U8DirectSnapshot& snapshot,
                                             const uint8_t* codes, int batch) const {
  QuantizedTensorView view;
  view.data = codes;
  view.shape = config_.InputShape(batch);
  view.scale = snapshot.scale;
  view.zero_point = snapshot.zero_point;
  return view;
}

ClassifyResult AdClassifier::Classify(const Bitmap& image) {
  Stopwatch timer;
  // Snapshot the u8-direct state so preprocessing can run outside the
  // network lock (mirrors the float path, which also preprocesses first).
  U8DirectSnapshot u8 = SnapshotU8Direct();
  Tensor input;
  // Reused per thread: steady-state u8-direct classification allocates
  // neither a float staging tensor nor a fresh code buffer.
  std::vector<uint8_t>& codes = ThreadCodeBuffer();
  if (u8.active) {
    SizeCodeBuffer(codes, static_cast<size_t>(config_.InputShape().Elements()));
    BitmapToTensorU8Into(image, config_.input_size, config_.input_channels, u8.scale,
                         u8.zero_point, codes.data());
  } else {
    input = BitmapToTensor(image, config_.input_size, config_.input_channels);
  }
  ClassifyResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (u8.active && U8SnapshotStaleLocked(u8)) {
      // Precision or calibration flipped between the snapshot and the lock
      // (rare): the prepared codes are stale — fall back to the float path.
      u8.active = false;
      input = BitmapToTensor(image, config_.input_size, config_.input_channels);
    }
    try {
      Tensor logits;
      if (u8.active) {
        logits = network_.ForwardQuantized(MakeU8View(u8, codes.data(), 1));
        ++stats_.u8_direct;
      } else {
        logits = network_.Forward(input);
      }
      Softmax softmax;
      Tensor probs = softmax.Forward(logits);
      // Class 1 == ad by convention throughout the repo.
      result.ad_probability = probs.at(0, 0, 0, 1);
    } catch (const std::bad_alloc&) {
      // Forward scratch allocation failed: fail OPEN. Rendering an
      // unclassified ad is recoverable (the next visit re-classifies);
      // blocking content — or crashing the host browser — is not. The
      // tensors and arena unwind cleanly, so the next forward starts fresh.
      ++stats_.alloc_failovers;
      result.ad_probability = 0.0f;
    }
    result.is_ad = result.ad_probability >= threshold_;
    result.latency_ms = timer.ElapsedMs();
    ++stats_.classified;
    if (result.is_ad) {
      ++stats_.blocked;
    }
    if (policy_.classify_deadline_ms > 0.0 &&
        result.latency_ms > policy_.classify_deadline_ms) {
      ++stats_.deadline_misses;  // soft: the result above still stands
    }
    stats_.total_latency_ms += result.latency_ms;
  }
  return result;
}

std::vector<ClassifyResult> AdClassifier::ClassifyBatch(
    const std::vector<const Bitmap*>& images) {
  const int batch = static_cast<int>(images.size());
  if (batch == 0) {
    return {};
  }
  Stopwatch preprocess_timer;

  U8DirectSnapshot u8 = SnapshotU8Direct();

  // Stack the preprocessed samples into one NHWC tensor — or, on the
  // u8-direct path, one NHWC uint8 code buffer (no float staging tensor).
  // Resize dominates for large creatives, so it fans out over the pool.
  const int64_t sample_elements = static_cast<int64_t>(config_.input_size) *
                                  config_.input_size * config_.input_channels;
  Tensor input;
  std::vector<uint8_t>& codes = ThreadCodeBuffer();
  auto preprocess_u8 = [&] {
    SizeCodeBuffer(codes,
                   static_cast<size_t>(batch) * static_cast<size_t>(sample_elements));
    InferenceParallelFor(batch, sample_elements * 8, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        BitmapToTensorU8Into(*images[static_cast<size_t>(i)], config_.input_size,
                             config_.input_channels, u8.scale, u8.zero_point,
                             codes.data() + i * sample_elements);
      }
    });
  };
  auto preprocess_float = [&] {
    input = Tensor(batch, config_.input_size, config_.input_size, config_.input_channels);
    InferenceParallelFor(batch, sample_elements * 8, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        BitmapToTensorInto(*images[static_cast<size_t>(i)], config_.input_size,
                           config_.input_channels, input.SampleData(static_cast<int>(i)));
      }
    });
  };
  if (u8.active) {
    preprocess_u8();
  } else {
    preprocess_float();
  }
  const double preprocess_ms = preprocess_timer.ElapsedMs();

  std::vector<ClassifyResult> results(static_cast<size_t>(batch));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (u8.active && U8SnapshotStaleLocked(u8)) {
      // See Classify(): the snapshot went stale — redo in float.
      u8.active = false;
      preprocess_float();
    }
    // The forward timer starts after the lock is acquired: overlapping
    // batches queueing on the network mutex must not bill their wait as
    // classification latency.
    Stopwatch forward_timer;
    Tensor probs;
    bool failed_open = false;
    try {
      Tensor logits;
      if (u8.active) {
        logits = network_.ForwardQuantized(MakeU8View(u8, codes.data(), batch));
        stats_.u8_direct += batch;
      } else {
        logits = network_.Forward(input);
      }
      Softmax softmax;
      probs = softmax.Forward(logits);
    } catch (const std::bad_alloc&) {
      // See Classify(): the whole batch fails open rather than crashing or
      // blocking — each frame renders and re-classifies on its next visit.
      stats_.alloc_failovers += batch;
      failed_open = true;
    }
    const double elapsed = preprocess_ms + forward_timer.ElapsedMs();
    const double per_image = elapsed / batch;
    const bool missed_deadline =
        policy_.classify_deadline_ms > 0.0 && per_image > policy_.classify_deadline_ms;
    for (int i = 0; i < batch; ++i) {
      ClassifyResult& r = results[static_cast<size_t>(i)];
      r.ad_probability = failed_open ? 0.0f : probs.at(i, 0, 0, 1);
      r.is_ad = r.ad_probability >= threshold_;
      r.latency_ms = per_image;
      ++stats_.classified;
      if (r.is_ad) {
        ++stats_.blocked;
      }
      if (missed_deadline) {
        ++stats_.deadline_misses;
      }
    }
    stats_.total_latency_ms += elapsed;
  }
  return results;
}

bool AdClassifier::OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                                  const std::string& source_url) {
  (void)source_url;
  if (min_dimension_ > 0 &&
      (info.width < min_dimension_ || info.height < min_dimension_)) {
    return false;
  }
  return Classify(pixels).is_ad;
}

ClassifierStats AdClassifier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AdClassifier::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ClassifierStats{};
}

void AsyncAdClassifier::SetPrimaryHashForTest(HashFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  primary_hash_ = fn != nullptr ? fn : &HashBytes;
}

void AsyncAdClassifier::SetServingPolicy(const ServingPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
  // A tightened memo cap applies immediately, not at the next insert: the
  // whole point of the cap is a memory bound that holds right now.
  if (policy_.max_memo_entries > 0) {
    while (memo_slots_.size() > policy_.max_memo_entries) {
      MemoEvictOneLocked();
    }
  }
}

ServingPolicy AsyncAdClassifier::serving_policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

void AsyncAdClassifier::MemoEvictOneLocked() {
  // CLOCK second-chance sweep: clear reference bits until an unreferenced
  // slot comes under the hand, then swap-remove it so the ring stays dense.
  // Worst case is two revolutions (first clears every bit), so the sweep is
  // O(capacity) bounded even when everything was recently hit.
  PCHECK(!memo_slots_.empty());
  for (;;) {
    if (clock_hand_ >= memo_slots_.size()) {
      clock_hand_ = 0;
    }
    MemoSlot& slot = memo_slots_[clock_hand_];
    if (slot.referenced) {
      slot.referenced = false;
      ++clock_hand_;
      continue;
    }
    memo_index_.erase(slot.key);
    if (clock_hand_ + 1 != memo_slots_.size()) {
      slot = memo_slots_.back();
      memo_index_[slot.key] = clock_hand_;
    }
    memo_slots_.pop_back();
    ++stats_.evicted;
    return;
  }
}

void AsyncAdClassifier::MemoInsertLocked(uint64_t key, uint64_t verify, bool is_ad) {
  auto it = memo_index_.find(key);
  if (it != memo_index_.end()) {
    // Last writer wins if two colliding creatives were in one drain; the
    // loser re-classifies on its next frame (counted as a collision)
    // instead of inheriting the winner's decision.
    MemoSlot& slot = memo_slots_[it->second];
    slot.verify = verify;
    slot.is_ad = is_ad;
    return;
  }
  if (policy_.max_memo_entries > 0 && memo_slots_.size() >= policy_.max_memo_entries) {
    MemoEvictOneLocked();
  }
  memo_index_[key] = memo_slots_.size();
  // Inserted unreferenced: a new entry earns its reference bit with a hit,
  // so a flood of one-off creatives recycles its own slots instead of
  // evicting the fleet's hot set.
  memo_slots_.push_back(MemoSlot{key, verify, is_ad, false});
}

void AsyncAdClassifier::NoteBatchLatencyLocked(double per_image_ms) {
  if (policy_.classify_deadline_ms <= 0.0) {
    return;
  }
  if (per_image_ms <= policy_.classify_deadline_ms) {
    consecutive_misses_ = 0;
    return;
  }
  ++stats_.deadline_misses;
  if (!degraded_ && policy_.degrade_after_misses > 0 &&
      ++consecutive_misses_ >= policy_.degrade_after_misses) {
    // Trip the degrade state: fail open on every uncached creative (the
    // paper's async contract — render now — held even when inference has
    // gone pathological) until recover_after_frames frames pass.
    degraded_ = true;
    frames_until_recovery_ = std::max(1, policy_.recover_after_frames);
    ++stats_.degrade_transitions;
    LogLine("async classifier: DEGRADED (fail-open) after " +
            std::to_string(consecutive_misses_) +
            " consecutive over-deadline batches; self-heal in " +
            std::to_string(frames_until_recovery_) + " frames");
  }
}

bool AsyncAdClassifier::OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                                       const std::string& source_url) {
  (void)info;
  (void)source_url;
  std::lock_guard<std::mutex> lock(mutex_);
  // Degrade bookkeeping first: every arriving frame advances the self-heal
  // countdown, and the frame that reaches zero is admitted normally again
  // (it is the probe that proves recovery).
  bool shed_uncached = false;
  if (degraded_) {
    ++stats_.degraded_frames;
    if (--frames_until_recovery_ <= 0) {
      degraded_ = false;
      consecutive_misses_ = 0;
      ++stats_.degrade_transitions;
      LogLine("async classifier: degrade state cleared; resuming admission");
    } else {
      shed_uncached = true;
    }
  }
  const uint64_t key = primary_hash_(pixels.data(), pixels.byte_size());
  const uint64_t verify = HashBytesSeeded(pixels.data(), pixels.byte_size(), kVerifyHashSeed);
  auto it = memo_index_.find(key);
  if (it != memo_index_.end()) {
    MemoSlot& slot = memo_slots_[it->second];
    if (slot.verify == verify) {
      ++stats_.cache_hits;
      slot.referenced = true;  // CLOCK recency: a hit defends the slot
      return slot.is_ad;       // Memoized decision applies immediately —
                               // even degraded, a lookup is always allowed.
    }
    // Same 64-bit hash, different payload: applying the cached decision
    // would block/pass the wrong creative. Count it and classify this frame
    // on its own.
    ++stats_.hash_collisions;
  }
  ++stats_.cache_misses;
  // Not yet known: the frame renders now regardless (no added latency);
  // the admission ladder only decides whether classification work is
  // queued for it. Rungs, in order: degraded -> shed; duplicate ->
  // coalesce; queue full (or saturation fault) -> shed; else admit.
  if (shed_uncached) {
    ++stats_.shed;
    return false;
  }
  const uint64_t flight_key = HashCombine(key, verify);
  if (in_flight_.count(flight_key) != 0) {
    ++stats_.coalesced;  // already queued or mid-drain: ride that work
    return false;
  }
  if ((policy_.max_pending > 0 && pending_.size() >= policy_.max_pending) ||
      faultpoint::ShouldFire(faultpoint::kQueueSaturate)) {
    ++stats_.shed;  // bounded admission: render unclassified, don't queue
    return false;
  }
  in_flight_.insert(flight_key);
  pending_.push_back(PendingFrame{key, verify, pixels});
  return false;
}

void AsyncAdClassifier::DrainPending(ThreadPool* pool, int batch_size, double budget_ms) {
  // batch_size <= 0 used to make zero-size batches — ceil(n/0) progress,
  // i.e. none, and a caller looping "drain until pending empty" would spin
  // forever. Clamp to one frame per batch (regression-tested).
  batch_size = std::max(batch_size, 1);
  Stopwatch timer;
  std::vector<PendingFrame> work;
  double budget = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    budget = budget_ms >= 0.0 ? budget_ms : policy_.drain_budget_ms;
    work.swap(pending_);
    // Keys stay in in_flight_ until their result is memoized below, so
    // frames decoded mid-drain cannot re-queue a creative being classified.
  }
  if (work.empty()) {
    return;
  }

  const int batches =
      static_cast<int>((work.size() + static_cast<size_t>(batch_size) - 1) /
                       static_cast<size_t>(batch_size));
  auto run_batch = [&](int index) {
    const size_t begin = static_cast<size_t>(index) * static_cast<size_t>(batch_size);
    const size_t end = std::min(work.size(), begin + static_cast<size_t>(batch_size));
    std::vector<const Bitmap*> images;
    images.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      images.push_back(&work[i].pixels);
    }
    const std::vector<ClassifyResult> results = inner_.ClassifyBatch(images);
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = begin; i < end; ++i) {
      MemoInsertLocked(work[i].key, work[i].verify, results[i - begin].is_ad);
      in_flight_.erase(HashCombine(work[i].key, work[i].verify));
    }
    if (!results.empty()) {
      // All results in one batch share the per-image latency; one reading
      // feeds the deadline/degrade ladder per batch.
      NoteBatchLatencyLocked(results[0].latency_ms);
    }
  };

  if (budget <= 0.0 && pool != nullptr && batches > 1) {
    // Unbudgeted pooled drain: batches overlap — while one batch holds the
    // network lock for its forward pass, others preprocess their bitmaps.
    pool->ParallelFor(batches, run_batch);
    return;
  }
  // Budgeted (or serial) drain: the budget is checked BETWEEN batches, so
  // one batch always completes (a drain that could do nothing would never
  // catch up) and a batch never runs past the budget it started under.
  int done = 0;
  while (done < batches) {
    run_batch(done);
    ++done;
    if (budget > 0.0 && done < batches && timer.ElapsedMs() >= budget) {
      break;
    }
  }
  if (done < batches) {
    // Budget spent with work left: requeue the unprocessed tail at the
    // front (admission order preserved). Their in_flight_ keys were never
    // released, so duplicates arriving meanwhile still coalesce.
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.insert(pending_.begin(),
                    std::make_move_iterator(work.begin() +
                                            static_cast<size_t>(done) *
                                                static_cast<size_t>(batch_size)),
                    std::make_move_iterator(work.end()));
  }
}

int64_t AsyncAdClassifier::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(memo_index_.size());
}

int64_t AsyncAdClassifier::pending_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(pending_.size());
}

bool AsyncAdClassifier::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degraded_;
}

ClassifierStats AsyncAdClassifier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace percival
