#include "src/core/classifier.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <new>
#include <thread>

#include "src/base/hash.h"
#include "src/base/logging.h"
#include "src/base/stopwatch.h"
#include "src/img/resize.h"
#include "src/nn/activation.h"
#include "src/nn/gemm.h"
#include "src/nn/serialize.h"

namespace percival {

namespace {

// Per-thread u8 preprocessing buffer shared by Classify and ClassifyBatch
// (one thread never interleaves the two mid-classification). Previously two
// separate thread_local vectors ratcheted up to the largest frame/batch
// ever seen and kept that capacity for the thread's lifetime; sizing now
// goes through SizeCodeBuffer, which releases the excess once the required
// size drops below half the held capacity.
std::vector<uint8_t>& ThreadCodeBuffer() {
  thread_local std::vector<uint8_t> codes;
  return codes;
}

void SizeCodeBuffer(std::vector<uint8_t>& codes, size_t needed) {
  if (codes.capacity() > 2 * needed) {
    std::vector<uint8_t>(needed).swap(codes);
  } else {
    codes.resize(needed);
  }
}

// Caller time for the sans-IO ServingEngine: the engine never reads a
// clock, so every adapter call stamps it with the steady clock here.
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

size_t ClassifierCodeBufferCapacity() { return ThreadCodeBuffer().capacity(); }

AdClassifier::AdClassifier(Network network, const PercivalNetConfig& config, float threshold)
    : config_(config), network_(std::move(network)), threshold_(threshold) {
  LogSimdPathOnce();
  // Frozen deployment: eval mode stops every forward from capturing
  // backward state (ReLU masks, pool argmax, per-conv input copies).
  network_.SetTrainingMode(false);
  // Reserve the constructing thread's forward workspace now; a first
  // classification issued from another thread warms that thread's arena
  // organically (the plan is thread-local, see Network::PlanForward).
  network_.PlanForward(config_.InputShape());
  RefreshU8DirectLocked();
}

void AdClassifier::RefreshU8DirectLocked() {
  u8_direct_active_ = use_u8_direct_ && precision_ == Precision::kInt8 &&
                      network_.AcceptsQuantizedInput();
  if (!u8_direct_active_) {
    return;
  }
  // The classifier always feeds pixels / 255, so the network input lives in
  // [0, 1]. Pin that (or the artifact's calibrated range, when it shipped
  // one) as the first conv's input calibration: BOTH pipelines — u8-direct
  // and float-then-quantize — then derive one shared quantization from it,
  // which is what makes their classifications bit-identical. The
  // quantization itself is NOT cached here: snapshots re-derive it from the
  // conv's live calibration (see InputQuantLocked), so changing the
  // calibration later — e.g. a capture batch run on network() — keeps both
  // pipelines in lockstep instead of silently splitting them.
  float lo = 0.0f;
  float hi = 1.0f;
  if (!network_.layer(0).InputCalibration(&lo, &hi)) {
    const ActivationCalibration unit_range{0.0f, 1.0f, true};
    network_.layer(0).ConsumeCalibration(&unit_range, 1);
  }
  LogLine(std::string("classifier: u8-direct preprocessing on (") +
          network_.KernelPlanSummary() + ")");
}

ActivationQuant AdClassifier::InputQuantLocked() const {
  // [0, 1] matches the pin RefreshU8DirectLocked installs, so the fallback
  // only applies if someone cleared the calibration through network().
  float lo = 0.0f;
  float hi = 1.0f;
  network_.layer(0).InputCalibration(&lo, &hi);
  return ComputeActivationQuant(lo, hi);
}

void AdClassifier::SetPrecision(Precision precision) {
  std::lock_guard<std::mutex> lock(mutex_);
  precision_ = precision;
  network_.SetPrecision(precision);
  network_.PlanForward(config_.InputShape());
  RefreshU8DirectLocked();
}

Precision AdClassifier::precision() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return precision_;
}

void AdClassifier::set_use_u8_direct(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  use_u8_direct_ = enabled;
  RefreshU8DirectLocked();
}

bool AdClassifier::u8_direct_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return u8_direct_active_;
}

void AdClassifier::SetServingPolicy(const ServingPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  policy_ = policy;
}

ServingPolicy AdClassifier::serving_policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return policy_;
}

bool AdClassifier::LoadWeightsWithRetry(const std::string& path) {
  // The retry/backoff SCHEDULE is sans-IO ServingEngine state driven on
  // caller time; this adapter contributes what the engine refuses to own:
  // the file reads (with their fault points), the stage-then-commit into
  // the deployed network, and real sleeps until the engine's next wake.
  ServingEngine schedule(serving_policy());
  schedule.RequestReload(path, NowNs());
  while (schedule.reload_active()) {
    if (schedule.Step(NowNs()) == EngineAction::kNeedArtifact) {
      std::vector<uint8_t> bytes;
      ReadFileBytes(schedule.ArtifactPath(), &bytes);
      // CommitWeightBytes stages and validates the whole artifact before
      // committing anything, so every failed attempt — including the last
      // — leaves the previous good network serving.
      const bool committed = !bytes.empty() && CommitWeightBytes(bytes);
      schedule.ProvideArtifact(bytes, committed, NowNs());
      continue;
    }
    const int64_t wake = schedule.next_wake_ns();
    const int64_t now = NowNs();
    if (wake > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(wake - now));
    }
  }
  {
    // Mirror the schedule's retry count into this classifier's stats —
    // reload observability stays where operators already look for it.
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.reload_retries += schedule.stats().reload_retries;
  }
  if (!schedule.reload_succeeded()) {
    LogLine("classifier: reload of '" + path + "' failed after " +
            std::to_string(std::max(0, serving_policy().reload_max_retries) + 1) +
            " attempt(s); keeping the previous weights");
  }
  return schedule.reload_succeeded();
}

bool AdClassifier::LoadWeights(const std::string& path) {
  // One read, then peek + deserialize the SAME bytes (CommitWeightBytes):
  // re-opening the file to sniff the version would race a concurrent
  // artifact swap.
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    return false;
  }
  return CommitWeightBytes(bytes);
}

bool AdClassifier::CommitWeightBytes(const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!DeserializeWeights(network_, bytes)) {
    return false;
  }
  // A v2 artifact runs on the int8 engine it was quantized for — keyed on
  // the file header, not on whether its payloads survived the clamp check:
  // a wider-clamp artifact on a narrower build still runs int8, just
  // requantized from the dequantized floats (the deserializer logs that).
  precision_ =
      PeekWeightsVersion(bytes) == 2 ? Precision::kInt8 : Precision::kFloat32;
  network_.SetPrecision(precision_);
  network_.PlanForward(config_.InputShape());
  RefreshU8DirectLocked();
  return true;
}

AdClassifier::U8DirectSnapshot AdClassifier::SnapshotU8Direct() const {
  std::lock_guard<std::mutex> lock(mutex_);
  U8DirectSnapshot snapshot;
  snapshot.active = u8_direct_active_;
  if (snapshot.active) {
    const ActivationQuant quant = InputQuantLocked();
    snapshot.scale = quant.scale;
    snapshot.zero_point = quant.zero_point;
  }
  return snapshot;
}

bool AdClassifier::U8SnapshotStaleLocked(const U8DirectSnapshot& snapshot) const {
  if (!u8_direct_active_) {
    return true;
  }
  const ActivationQuant quant = InputQuantLocked();
  return quant.scale != snapshot.scale || quant.zero_point != snapshot.zero_point;
}

QuantizedTensorView AdClassifier::MakeU8View(const U8DirectSnapshot& snapshot,
                                             const uint8_t* codes, int batch) const {
  QuantizedTensorView view;
  view.data = codes;
  view.shape = config_.InputShape(batch);
  view.scale = snapshot.scale;
  view.zero_point = snapshot.zero_point;
  return view;
}

ClassifyResult AdClassifier::Classify(const Bitmap& image) {
  Stopwatch timer;
  // Snapshot the u8-direct state so preprocessing can run outside the
  // network lock (mirrors the float path, which also preprocesses first).
  U8DirectSnapshot u8 = SnapshotU8Direct();
  Tensor input;
  // Reused per thread: steady-state u8-direct classification allocates
  // neither a float staging tensor nor a fresh code buffer.
  std::vector<uint8_t>& codes = ThreadCodeBuffer();
  if (u8.active) {
    SizeCodeBuffer(codes, static_cast<size_t>(config_.InputShape().Elements()));
    BitmapToTensorU8Into(image, config_.input_size, config_.input_channels, u8.scale,
                         u8.zero_point, codes.data());
  } else {
    input = BitmapToTensor(image, config_.input_size, config_.input_channels);
  }
  ClassifyResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (u8.active && U8SnapshotStaleLocked(u8)) {
      // Precision or calibration flipped between the snapshot and the lock
      // (rare): the prepared codes are stale — fall back to the float path.
      u8.active = false;
      input = BitmapToTensor(image, config_.input_size, config_.input_channels);
    }
    try {
      Tensor logits;
      if (u8.active) {
        logits = network_.ForwardQuantized(MakeU8View(u8, codes.data(), 1));
        ++stats_.u8_direct;
      } else {
        logits = network_.Forward(input);
      }
      Softmax softmax;
      Tensor probs = softmax.Forward(logits);
      // Class 1 == ad by convention throughout the repo.
      result.ad_probability = probs.at(0, 0, 0, 1);
    } catch (const std::bad_alloc&) {
      // Forward scratch allocation failed: fail OPEN. Rendering an
      // unclassified ad is recoverable (the next visit re-classifies);
      // blocking content — or crashing the host browser — is not. The
      // tensors and arena unwind cleanly, so the next forward starts fresh.
      ++stats_.alloc_failovers;
      result.ad_probability = 0.0f;
    }
    result.is_ad = result.ad_probability >= threshold_;
    result.latency_ms = timer.ElapsedMs();
    ++stats_.classified;
    if (result.is_ad) {
      ++stats_.blocked;
    }
    if (policy_.classify_deadline_ms > 0.0 &&
        result.latency_ms > policy_.classify_deadline_ms) {
      ++stats_.deadline_misses;  // soft: the result above still stands
    }
    stats_.total_latency_ms += result.latency_ms;
  }
  return result;
}

std::vector<ClassifyResult> AdClassifier::ClassifyBatch(
    const std::vector<const Bitmap*>& images) {
  const int batch = static_cast<int>(images.size());
  if (batch == 0) {
    return {};
  }
  Stopwatch preprocess_timer;

  U8DirectSnapshot u8 = SnapshotU8Direct();

  // Stack the preprocessed samples into one NHWC tensor — or, on the
  // u8-direct path, one NHWC uint8 code buffer (no float staging tensor).
  // Resize dominates for large creatives, so it fans out over the pool.
  const int64_t sample_elements = static_cast<int64_t>(config_.input_size) *
                                  config_.input_size * config_.input_channels;
  Tensor input;
  std::vector<uint8_t>& codes = ThreadCodeBuffer();
  auto preprocess_u8 = [&] {
    SizeCodeBuffer(codes,
                   static_cast<size_t>(batch) * static_cast<size_t>(sample_elements));
    InferenceParallelFor(batch, sample_elements * 8, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        BitmapToTensorU8Into(*images[static_cast<size_t>(i)], config_.input_size,
                             config_.input_channels, u8.scale, u8.zero_point,
                             codes.data() + i * sample_elements);
      }
    });
  };
  auto preprocess_float = [&] {
    input = Tensor(batch, config_.input_size, config_.input_size, config_.input_channels);
    InferenceParallelFor(batch, sample_elements * 8, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        BitmapToTensorInto(*images[static_cast<size_t>(i)], config_.input_size,
                           config_.input_channels, input.SampleData(static_cast<int>(i)));
      }
    });
  };
  if (u8.active) {
    preprocess_u8();
  } else {
    preprocess_float();
  }
  const double preprocess_ms = preprocess_timer.ElapsedMs();

  std::vector<ClassifyResult> results(static_cast<size_t>(batch));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (u8.active && U8SnapshotStaleLocked(u8)) {
      // See Classify(): the snapshot went stale — redo in float.
      u8.active = false;
      preprocess_float();
    }
    // The forward timer starts after the lock is acquired: overlapping
    // batches queueing on the network mutex must not bill their wait as
    // classification latency.
    Stopwatch forward_timer;
    Tensor probs;
    bool failed_open = false;
    try {
      Tensor logits;
      if (u8.active) {
        logits = network_.ForwardQuantized(MakeU8View(u8, codes.data(), batch));
        stats_.u8_direct += batch;
      } else {
        logits = network_.Forward(input);
      }
      Softmax softmax;
      probs = softmax.Forward(logits);
    } catch (const std::bad_alloc&) {
      // See Classify(): the whole batch fails open rather than crashing or
      // blocking — each frame renders and re-classifies on its next visit.
      stats_.alloc_failovers += batch;
      failed_open = true;
    }
    const double elapsed = preprocess_ms + forward_timer.ElapsedMs();
    const double per_image = elapsed / batch;
    const bool missed_deadline =
        policy_.classify_deadline_ms > 0.0 && per_image > policy_.classify_deadline_ms;
    for (int i = 0; i < batch; ++i) {
      ClassifyResult& r = results[static_cast<size_t>(i)];
      r.ad_probability = failed_open ? 0.0f : probs.at(i, 0, 0, 1);
      r.is_ad = r.ad_probability >= threshold_;
      r.latency_ms = per_image;
      ++stats_.classified;
      if (r.is_ad) {
        ++stats_.blocked;
      }
      if (missed_deadline) {
        ++stats_.deadline_misses;
      }
    }
    stats_.total_latency_ms += elapsed;
  }
  return results;
}

bool AdClassifier::OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                                  const std::string& source_url) {
  (void)source_url;
  if (min_dimension_ > 0 &&
      (info.width < min_dimension_ || info.height < min_dimension_)) {
    return false;
  }
  return Classify(pixels).is_ad;
}

ClassifierStats AdClassifier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AdClassifier::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = ClassifierStats{};
}

void AsyncAdClassifier::SetPrimaryHashForTest(HashFn fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  engine_.SetPrimaryHash(fn);
}

void AsyncAdClassifier::SetServingPolicy(const ServingPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  engine_.SetPolicy(policy);
}

ServingPolicy AsyncAdClassifier::serving_policy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.policy();
}

void AsyncAdClassifier::LogDegradeTransitionLocked(bool was_degraded) {
  // The sans-IO engine cannot log (LogLine timestamps would be a hidden
  // wall-clock read), so the adapter narrates its transitions. At trip
  // time the engine's consecutive-miss count equals the policy trip wire
  // and the countdown was just armed, so the message matches what the
  // pre-refactor monolith printed.
  if (was_degraded == engine_.degraded()) {
    return;
  }
  if (engine_.degraded()) {
    LogLine("async classifier: DEGRADED (fail-open) after " +
            std::to_string(engine_.policy().degrade_after_misses) +
            " consecutive over-deadline batches; self-heal in " +
            std::to_string(std::max(1, engine_.policy().recover_after_frames)) +
            " frames");
  } else {
    LogLine("async classifier: degrade state cleared; resuming admission");
  }
}

bool AsyncAdClassifier::OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                                       const std::string& source_url) {
  (void)info;
  (void)source_url;
  std::lock_guard<std::mutex> lock(mutex_);
  const bool was_degraded = engine_.degraded();
  const SubmitOutcome outcome = engine_.Submit(pixels, NowNs());
  if (outcome.disposition == SubmitDisposition::kAdmitted) {
    // The engine stored no pixels (caller-owned buffers): retain a copy for
    // the ticket — the renderer recycles the decoded buffer the moment this
    // hook returns — and back the ticket with the copy's stable address.
    auto inserted = buffers_.emplace(outcome.ticket, pixels);
    engine_.ProvidePixels(outcome.ticket, &inserted.first->second);
  }
  LogDegradeTransitionLocked(was_degraded);
  return outcome.is_ad;
}

void AsyncAdClassifier::RunBatch(const EngineBatch& batch) {
  // The forward pass runs unlocked (the inner classifier has its own
  // network mutex): frame intake and other pooled batches proceed
  // meanwhile. Only the report-back touches engine state.
  const std::vector<ClassifyResult> results = inner_.ClassifyBatch(batch.images);
  std::lock_guard<std::mutex> lock(mutex_);
  const bool was_degraded = engine_.degraded();
  engine_.CompleteBatch(batch, results, NowNs());
  for (const uint64_t ticket : batch.tickets) {
    buffers_.erase(ticket);  // the buffer obligation ends with the batch
  }
  LogDegradeTransitionLocked(was_degraded);
}

void AsyncAdClassifier::DrainPending(ThreadPool* pool, int batch_size, double budget_ms) {
  batch_size = std::max(batch_size, 1);
  // The engine runs one drain at a time, so whole drains serialize here
  // (hammer tests drain from many threads at once); a queued drain then
  // picks up whatever the previous one left pending.
  std::lock_guard<std::mutex> drain_guard(drain_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!engine_.BeginDrain(NowNs(), budget_ms)) {
    return;  // nothing pending
  }
  const double budget = engine_.drain_budget_ms();
  const int batches =
      static_cast<int>((engine_.drain_remaining() + static_cast<size_t>(batch_size) - 1) /
                       static_cast<size_t>(batch_size));
  if (budget <= 0.0 && pool != nullptr && batches > 1) {
    // Unbudgeted pooled drain: hand out every batch up front and classify
    // them on the pool — while one batch holds the network lock for its
    // forward pass, others preprocess their bitmaps.
    std::vector<EngineBatch> work;
    work.reserve(static_cast<size_t>(batches));
    for (EngineBatch batch = engine_.BeginBatch(batch_size); !batch.empty();
         batch = engine_.BeginBatch(batch_size)) {
      work.push_back(std::move(batch));
    }
    lock.unlock();
    pool->ParallelFor(static_cast<int>(work.size()),
                      [&](int i) { RunBatch(work[static_cast<size_t>(i)]); });
    return;
  }
  // Budgeted (or serial) drain: the engine checks the budget BETWEEN
  // batches (one batch always runs) and requeues the unprocessed tail at
  // the front of its pending queue when the budget expires.
  while (engine_.Step(NowNs()) == EngineAction::kRunBatch) {
    const EngineBatch batch = engine_.BeginBatch(batch_size);
    lock.unlock();
    RunBatch(batch);
    lock.lock();
  }
}

int64_t AsyncAdClassifier::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.memo_size();
}

int64_t AsyncAdClassifier::near_dup_cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.near_dup_size();
}

int64_t AsyncAdClassifier::pending_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.pending_size();
}

bool AsyncAdClassifier::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.degraded();
}

ClassifierStats AsyncAdClassifier::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return engine_.stats();
}

}  // namespace percival
