// Display list: the draw commands produced from DOM + layout (§2.1:
// "the display-list includes commands to draw the elements on the screen").
#ifndef PERCIVAL_SRC_RENDERER_DISPLAY_LIST_H_
#define PERCIVAL_SRC_RENDERER_DISPLAY_LIST_H_

#include <string>
#include <vector>

#include "src/img/bitmap.h"
#include "src/img/draw.h"
#include "src/renderer/layout.h"

namespace percival {

enum class DisplayItemKind {
  kColorRect,   // solid background fill
  kImage,       // decoded-at-raster-time image (img tag, CSS background, JS)
  kTextBlock,   // text placeholder block
};

struct DisplayItem {
  DisplayItemKind kind = DisplayItemKind::kColorRect;
  Rect rect;
  Color color;                // kColorRect / kTextBlock ink color
  std::string image_url;      // kImage: resource to decode
  bool image_is_ad = false;   // ground-truth passthrough for evaluation
};

using DisplayList = std::vector<DisplayItem>;

// Walks the layout tree and emits draw commands. Image elements reference
// their `src` attribute; elements with `bg` attributes emit color fills;
// `bgimg` attributes emit CSS-background image items (same decode path as
// img tags — the choke-point property the paper relies on).
DisplayList BuildDisplayList(const LayoutBox& root);

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_DISPLAY_LIST_H_
