// Tile-based rasterization with worker threads (§3.3: "Blink rasters on a
// per tile basis... multiple raster threads each rasterizing different
// raster tasks in parallel. PERCIVAL runs in each of these worker threads
// after image decoding and during rasterization").
#ifndef PERCIVAL_SRC_RENDERER_RASTER_H_
#define PERCIVAL_SRC_RENDERER_RASTER_H_

#include <vector>

#include "src/base/thread_pool.h"
#include "src/img/bitmap.h"
#include "src/renderer/display_list.h"
#include "src/renderer/image_pipeline.h"

namespace percival {

struct RasterConfig {
  int tile_size = 128;
  int raster_threads = 4;
  ImageInterceptor* interceptor = nullptr;  // PERCIVAL hook; null = off
};

struct RasterResult {
  Bitmap framebuffer;
  // Per-tile CPU cost in ms, in tile submission order (used by the virtual
  // clock to compute the raster-phase makespan).
  std::vector<double> tile_cpu_ms;
  int tiles = 0;
};

// Rasterizes `display_list` into a framebuffer of the given size, decoding
// images lazily through `cache`. Image decode + interception happen on the
// raster worker that first touches each image.
RasterResult RasterizeDisplayList(const DisplayList& display_list, int width, int height,
                                  ImageDecodeCache& cache, const RasterConfig& config);

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_RASTER_H_
