#include "src/renderer/display_list.h"

#include <cstdlib>

namespace percival {

namespace {

Color ParseColorAttr(const std::string& value, Color fallback) {
  // Format: "#RRGGBB".
  if (value.size() != 7 || value[0] != '#') {
    return fallback;
  }
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
      return c - 'A' + 10;
    }
    return 0;
  };
  return Color{static_cast<uint8_t>(hex(value[1]) * 16 + hex(value[2])),
               static_cast<uint8_t>(hex(value[3]) * 16 + hex(value[4])),
               static_cast<uint8_t>(hex(value[5]) * 16 + hex(value[6])), 255};
}

void EmitItems(const LayoutBox& box, DisplayList& items) {
  const DomNode* node = box.node;
  if (node != nullptr && !node->hidden_by_filter) {
    if (node->HasAttr("bg")) {
      items.push_back(DisplayItem{DisplayItemKind::kColorRect, box.rect,
                                  ParseColorAttr(node->GetAttr("bg"), Color{255, 255, 255, 255}),
                                  "", false});
    }
    if (node->HasAttr("bgimg")) {
      DisplayItem item;
      item.kind = DisplayItemKind::kImage;
      item.rect = box.rect;
      item.image_url = node->GetAttr("bgimg");
      items.push_back(item);
    }
    if (node->tag() == "img" && node->HasAttr("src")) {
      DisplayItem item;
      item.kind = DisplayItemKind::kImage;
      item.rect = box.rect;
      item.image_url = node->GetAttr("src");
      items.push_back(item);
    }
    if (node->tag() == "#text") {
      items.push_back(
          DisplayItem{DisplayItemKind::kTextBlock, box.rect, Color{40, 40, 40, 255}, "", false});
    }
  }
  for (const auto& child : box.children) {
    EmitItems(*child, items);
  }
}

}  // namespace

DisplayList BuildDisplayList(const LayoutBox& root) {
  DisplayList items;
  EmitItems(root, items);
  return items;
}

}  // namespace percival
