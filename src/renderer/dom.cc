#include "src/renderer/dom.h"

#include <cstdlib>

namespace percival {

std::string DomNode::GetAttr(const std::string& name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? "" : it->second;
}

int DomNode::GetIntAttr(const std::string& name, int fallback) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end() || it->second.empty()) {
    return fallback;
  }
  return std::atoi(it->second.c_str());
}

DomNode* DomNode::AddChild(std::unique_ptr<DomNode> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

void DomNode::Visit(const std::function<void(DomNode&)>& fn) {
  fn(*this);
  for (auto& child : children_) {
    child->Visit(fn);
  }
}

void DomNode::Visit(const std::function<void(const DomNode&)>& fn) const {
  fn(*this);
  for (const auto& child : children_) {
    static_cast<const DomNode&>(*child).Visit(fn);
  }
}

int DomNode::SubtreeSize() const {
  int count = 1;
  for (const auto& child : children_) {
    count += child->SubtreeSize();
  }
  return count;
}

ElementDescriptor DomNode::Descriptor() const {
  ElementDescriptor descriptor;
  descriptor.tag = tag_;
  descriptor.id = GetAttr("id");
  const std::string class_attr = GetAttr("class");
  size_t start = 0;
  while (start < class_attr.size()) {
    size_t end = class_attr.find(' ', start);
    if (end == std::string::npos) {
      end = class_attr.size();
    }
    if (end > start) {
      descriptor.classes.push_back(class_attr.substr(start, end - start));
    }
    start = end + 1;
  }
  return descriptor;
}

}  // namespace percival
