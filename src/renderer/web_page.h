// The renderer's input: a document plus its resource map (the "network").
#ifndef PERCIVAL_SRC_RENDERER_WEB_PAGE_H_
#define PERCIVAL_SRC_RENDERER_WEB_PAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/filter/rule.h"

namespace percival {

// One fetchable resource. `bytes` holds encoded image data, sub-document
// HTML, or script text depending on `type`.
struct WebResource {
  ResourceType type = ResourceType::kOther;
  std::vector<uint8_t> bytes;
  double latency_ms = 0.0;  // simulated network latency
  bool is_ad = false;       // ground-truth label from the synthetic web
};

// A full page: top-level HTML and every resource reachable from it
// (including resources referenced by sub-documents and scripts).
struct WebPage {
  std::string url;
  std::string html;
  std::map<std::string, WebResource> resources;

  const WebResource* FindResource(const std::string& resource_url) const {
    auto it = resources.find(resource_url);
    return it == resources.end() ? nullptr : &it->second;
  }
};

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_WEB_PAGE_H_
