// Small HTML parser: tags with attributes, nesting, text, self-closing
// elements. Covers the synthetic-web grammar produced by src/webgen.
#ifndef PERCIVAL_SRC_RENDERER_HTML_PARSER_H_
#define PERCIVAL_SRC_RENDERER_HTML_PARSER_H_

#include <string>

#include "src/renderer/dom.h"

namespace percival {

// Parses an HTML document into a DOM tree rooted at a synthetic "document"
// node. Unknown constructs degrade gracefully (malformed tags become text;
// stray close tags are ignored), mirroring browser error tolerance.
DomTree ParseHtml(const std::string& html);

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_HTML_PARSER_H_
