#include "src/renderer/html_parser.h"

#include <cctype>
#include <vector>

namespace percival {

namespace {

const char* const kVoidTags[] = {"img", "br", "hr", "input", "meta", "link"};

bool IsVoidTag(const std::string& tag) {
  for (const char* v : kVoidTags) {
    if (tag == v) {
      return true;
    }
  }
  return false;
}

std::string ToLower(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

}  // namespace

DomTree ParseHtml(const std::string& html) {
  auto root = std::make_unique<DomNode>("document");
  std::vector<DomNode*> stack = {root.get()};

  size_t pos = 0;
  while (pos < html.size()) {
    if (html[pos] != '<') {
      // Text run up to the next tag.
      size_t end = html.find('<', pos);
      if (end == std::string::npos) {
        end = html.size();
      }
      std::string text = html.substr(pos, end - pos);
      // Keep only non-whitespace text.
      if (text.find_first_not_of(" \t\r\n") != std::string::npos) {
        auto text_node = std::make_unique<DomNode>("#text");
        text_node->set_text(text);
        stack.back()->AddChild(std::move(text_node));
      }
      pos = end;
      continue;
    }
    size_t close = html.find('>', pos);
    if (close == std::string::npos) {
      break;  // Truncated tag: drop the remainder.
    }
    std::string inner = html.substr(pos + 1, close - pos - 1);
    pos = close + 1;
    if (inner.empty()) {
      continue;
    }
    if (inner[0] == '!') {
      continue;  // Comment / doctype.
    }
    if (inner[0] == '/') {
      // Close tag: pop to the matching open tag if present.
      const std::string tag = ToLower(inner.substr(1));
      for (size_t i = stack.size(); i > 1; --i) {
        if (stack[i - 1]->tag() == tag) {
          stack.resize(i - 1);
          break;
        }
      }
      continue;
    }
    bool self_closing = false;
    if (!inner.empty() && inner.back() == '/') {
      self_closing = true;
      inner.pop_back();
    }
    // Tag name.
    size_t name_end = 0;
    while (name_end < inner.size() &&
           !std::isspace(static_cast<unsigned char>(inner[name_end]))) {
      ++name_end;
    }
    const std::string tag = ToLower(inner.substr(0, name_end));
    auto node = std::make_unique<DomNode>(tag);
    // Attributes: name="value" or bare name.
    size_t apos = name_end;
    while (apos < inner.size()) {
      while (apos < inner.size() && std::isspace(static_cast<unsigned char>(inner[apos]))) {
        ++apos;
      }
      if (apos >= inner.size()) {
        break;
      }
      size_t eq = apos;
      while (eq < inner.size() && inner[eq] != '=' &&
             !std::isspace(static_cast<unsigned char>(inner[eq]))) {
        ++eq;
      }
      const std::string name = ToLower(inner.substr(apos, eq - apos));
      if (eq >= inner.size() || inner[eq] != '=') {
        if (!name.empty()) {
          node->SetAttr(name, "");
        }
        apos = eq;
        continue;
      }
      size_t vstart = eq + 1;
      std::string value;
      if (vstart < inner.size() && (inner[vstart] == '"' || inner[vstart] == '\'')) {
        const char quote = inner[vstart];
        size_t vend = inner.find(quote, vstart + 1);
        if (vend == std::string::npos) {
          vend = inner.size();
        }
        value = inner.substr(vstart + 1, vend - vstart - 1);
        apos = vend + 1;
      } else {
        size_t vend = vstart;
        while (vend < inner.size() && !std::isspace(static_cast<unsigned char>(inner[vend]))) {
          ++vend;
        }
        value = inner.substr(vstart, vend - vstart);
        apos = vend;
      }
      if (!name.empty()) {
        node->SetAttr(name, value);
      }
    }
    DomNode* added = stack.back()->AddChild(std::move(node));
    if (!self_closing && !IsVoidTag(tag)) {
      stack.push_back(added);
    }
  }
  return root;
}

}  // namespace percival
