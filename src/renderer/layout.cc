#include "src/renderer/layout.h"

#include <algorithm>

namespace percival {

namespace {

constexpr int kDefaultTextHeight = 14;

// Lays out `node` with its top-left at (x, y) given `available_width`.
// Returns the resulting box; the box height reflects content.
std::unique_ptr<LayoutBox> LayoutNode(const DomNode& node, int x, int y, int available_width) {
  auto box = std::make_unique<LayoutBox>();
  box->node = &node;

  if (node.hidden_by_filter) {
    box->rect = Rect{x, y, 0, 0};
    return box;
  }

  const int width = node.GetIntAttr("width", available_width);
  int declared_height = node.GetIntAttr("height", -1);

  // Absolute positioning overrides flow position.
  if (node.HasAttr("x")) {
    x = node.GetIntAttr("x", x);
  }
  if (node.HasAttr("y")) {
    y = node.GetIntAttr("y", y);
  }

  if (node.tag() == "#text") {
    box->rect = Rect{x, y, width, kDefaultTextHeight};
    return box;
  }

  int cursor_y = y;
  int flow_height = 0;
  for (const auto& child : node.children()) {
    // Scripts, head-content and hidden nodes do not occupy space.
    if (child->tag() == "script" || child->tag() == "head" || child->hidden_by_filter) {
      auto child_box = std::make_unique<LayoutBox>();
      child_box->node = child.get();
      child_box->rect = Rect{x, cursor_y, 0, 0};
      box->children.push_back(std::move(child_box));
      continue;
    }
    auto child_box = LayoutNode(*child, x, cursor_y, width);
    const bool absolute = child->HasAttr("x") || child->HasAttr("y");
    if (!absolute) {
      cursor_y = child_box->rect.Bottom();
      flow_height = cursor_y - y;
    }
    box->children.push_back(std::move(child_box));
  }

  int height = declared_height >= 0 ? declared_height : flow_height;
  if (node.tag() == "img" || node.tag() == "iframe") {
    // Replaced elements default to a nominal size if not declared.
    if (declared_height < 0) {
      height = node.GetIntAttr("height", 90);
    }
  }
  box->rect = Rect{x, y, width, std::max(height, 0)};
  return box;
}

int MaxBottom(const LayoutBox& box) {
  int bottom = box.rect.Bottom();
  for (const auto& child : box.children) {
    bottom = std::max(bottom, MaxBottom(*child));
  }
  return bottom;
}

}  // namespace

std::unique_ptr<LayoutBox> ComputeLayout(const DomNode& root, int viewport_width) {
  return LayoutNode(root, 0, 0, viewport_width);
}

int DocumentHeight(const LayoutBox& root) { return MaxBottom(root); }

}  // namespace percival
