// Deferred image decoding — the analogue of the Blink/Skia classes the
// paper instruments (§3.3): BitmapImage -> DeferredImageDecoder -> SkImage
// -> DecodingImageGenerator::onGetPixels().
//
// Encoded bytes are held until the raster phase; the first raster task that
// needs an image triggers the actual decode, at which point the registered
// ImageInterceptor (PERCIVAL) sees the raw pixel buffer and may clear it.
#ifndef PERCIVAL_SRC_RENDERER_IMAGE_PIPELINE_H_
#define PERCIVAL_SRC_RENDERER_IMAGE_PIPELINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/img/bitmap.h"
#include "src/img/codec.h"

namespace percival {

// PERCIVAL's integration point. Implementations receive every decoded frame
// before it reaches the rasterizer and return true to block (clear) it.
// `pixels` is the unmodified decoded buffer; implementations may mutate it.
class ImageInterceptor {
 public:
  virtual ~ImageInterceptor() = default;
  virtual bool OnDecodedFrame(const ImageInfo& info, Bitmap& pixels,
                              const std::string& source_url) = 0;
};

// Result of a deferred decode: all frames, post-interception.
struct DecodedImage {
  std::vector<Bitmap> frames;
  bool decode_failed = false;
  int frames_blocked = 0;
  double decode_cpu_ms = 0.0;     // time spent in the codec
  double classify_cpu_ms = 0.0;   // time spent inside the interceptor
};

// One deferred decoder per unique image URL. Thread-safe: concurrent raster
// tasks needing the same image decode it exactly once (the memoized
// SkImage cache in Blink behaves the same way).
class DeferredImageDecoder {
 public:
  DeferredImageDecoder(std::string url, std::vector<uint8_t> encoded_bytes);

  // Decodes on first call (running the interceptor on each frame), then
  // returns the cached result. `interceptor` may be null (PERCIVAL off).
  const DecodedImage& DecodeOnce(ImageInterceptor* interceptor);

  bool decoded() const { return decoded_; }
  const std::string& url() const { return url_; }

 private:
  std::string url_;
  std::vector<uint8_t> encoded_bytes_;
  std::mutex mutex_;
  bool decoded_ = false;
  DecodedImage result_;
};

// Cache of deferred decoders keyed by URL, owned by one render pass.
class ImageDecodeCache {
 public:
  // Registers encoded bytes for `url` (idempotent; first registration wins).
  void Register(const std::string& url, std::vector<uint8_t> encoded_bytes);

  // Returns the decoder for `url`, or nullptr if never registered.
  DeferredImageDecoder* Find(const std::string& url);

  int registered_count() const { return static_cast<int>(decoders_.size()); }

  // Aggregate stats over all decoded images.
  struct Stats {
    int images_decoded = 0;
    int frames_decoded = 0;
    int frames_blocked = 0;
    double decode_cpu_ms = 0.0;
    double classify_cpu_ms = 0.0;
  };
  Stats CollectStats() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<DeferredImageDecoder>> decoders_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_IMAGE_PIPELINE_H_
