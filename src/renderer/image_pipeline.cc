#include "src/renderer/image_pipeline.h"

#include "src/base/stopwatch.h"

namespace percival {

DeferredImageDecoder::DeferredImageDecoder(std::string url, std::vector<uint8_t> encoded_bytes)
    : url_(std::move(url)), encoded_bytes_(std::move(encoded_bytes)) {}

const DecodedImage& DeferredImageDecoder::DecodeOnce(ImageInterceptor* interceptor) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (decoded_) {
    return result_;
  }
  Stopwatch decode_timer;
  std::optional<std::vector<Bitmap>> frames = DecodeAllFrames(encoded_bytes_);
  result_.decode_cpu_ms = decode_timer.ElapsedMs();
  if (!frames) {
    result_.decode_failed = true;
    decoded_ = true;
    return result_;
  }
  result_.frames = std::move(*frames);
  if (interceptor != nullptr) {
    Stopwatch classify_timer;
    for (Bitmap& frame : result_.frames) {
      // This is the paper's choke point: the interceptor sees the decoded,
      // unmodified pixel buffer of every frame and may clear it (§3.3).
      if (interceptor->OnDecodedFrame(frame.info(), frame, url_)) {
        frame.Clear(Color{255, 255, 255, 0});
        ++result_.frames_blocked;
      }
    }
    result_.classify_cpu_ms = classify_timer.ElapsedMs();
  }
  decoded_ = true;
  return result_;
}

void ImageDecodeCache::Register(const std::string& url, std::vector<uint8_t> encoded_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (decoders_.count(url) == 0) {
    decoders_[url] = std::make_unique<DeferredImageDecoder>(url, std::move(encoded_bytes));
  }
}

DeferredImageDecoder* ImageDecodeCache::Find(const std::string& url) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = decoders_.find(url);
  return it == decoders_.end() ? nullptr : it->second.get();
}

ImageDecodeCache::Stats ImageDecodeCache::CollectStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  for (const auto& [url, decoder] : decoders_) {
    if (!decoder->decoded()) {
      continue;
    }
    // DecodeOnce with a null interceptor just returns the cached result.
    const DecodedImage& result = const_cast<DeferredImageDecoder&>(*decoder).DecodeOnce(nullptr);
    if (result.decode_failed) {
      continue;
    }
    ++stats.images_decoded;
    stats.frames_decoded += static_cast<int>(result.frames.size());
    stats.frames_blocked += result.frames_blocked;
    stats.decode_cpu_ms += result.decode_cpu_ms;
    stats.classify_cpu_ms += result.classify_cpu_ms;
  }
  return stats;
}

}  // namespace percival
