// The renderer process: HTML -> DOM -> (filter) -> layout -> display list ->
// deferred decode -> raster -> framebuffer, with PERCIVAL hooked between
// image decode and raster (Figure 1 / Figure 2 of the paper).
//
// Timing model: a virtual clock accumulates parse cost, the parallel
// network-fetch critical path, script execution, and the raster-phase
// makespan (real measured CPU per tile, scheduled across the configured
// worker count). Render time is reported as domComplete - domLoading,
// matching the paper's §5.7 metric.
#ifndef PERCIVAL_SRC_RENDERER_RENDERER_H_
#define PERCIVAL_SRC_RENDERER_RENDERER_H_

#include <set>
#include <string>
#include <vector>

#include "src/filter/engine.h"
#include "src/img/bitmap.h"
#include "src/renderer/image_pipeline.h"
#include "src/renderer/web_page.h"

namespace percival {

struct RenderOptions {
  int viewport_width = 1024;
  int raster_threads = 4;
  int tile_size = 128;
  // PERCIVAL hook; null disables perceptual blocking.
  ImageInterceptor* interceptor = nullptr;
  // Block-list engine (the Brave-shields / Adblock-Plus baseline); null
  // disables filter-list blocking.
  const FilterEngine* filter = nullptr;
  bool render_framebuffer = true;  // false skips pixel work (fast eval runs)
  // Element memoization (§6): image URLs whose *containing elements* should
  // be hidden on this visit because PERCIVAL blocked them on a previous
  // visit. Fixes the "dangling text" limitation of in-raster blocking —
  // the container (image + caption) collapses instead of leaving a hole.
  const std::set<std::string>* remembered_blocked_urls = nullptr;
};

// domLoading / domComplete analogues on the virtual clock (ms).
struct PageMetrics {
  double dom_loading = 0.0;
  double dom_complete = 0.0;
  double parse_ms = 0.0;
  double fetch_ms = 0.0;
  double script_ms = 0.0;
  double raster_ms = 0.0;
  double RenderTime() const { return dom_complete - dom_loading; }
};

// Per-image outcome, joined with ground truth for the evaluation harness.
struct ImageOutcome {
  std::string url;
  bool is_ad = false;          // ground truth from the synthetic web
  bool fetched = false;        // false when the filter list blocked the URL
  bool decoded = false;
  bool blocked_by_percival = false;
};

struct RenderStats {
  int requests = 0;
  int requests_blocked_by_filter = 0;
  int elements_hidden_by_filter = 0;
  int elements_hidden_by_memo = 0;  // §6 element memoization on revisit
  int images_decoded = 0;
  int frames_decoded = 0;
  int frames_blocked = 0;
  int scripts_executed = 0;
  int iframes_rendered = 0;
  double decode_cpu_ms = 0.0;
  double classify_cpu_ms = 0.0;
};

struct RenderResult {
  Bitmap framebuffer;
  PageMetrics metrics;
  RenderStats stats;
  std::vector<ImageOutcome> image_outcomes;
};

// Renders one page end-to-end.
RenderResult RenderPage(const WebPage& page, const RenderOptions& options);

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_RENDERER_H_
