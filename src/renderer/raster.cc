#include "src/renderer/raster.h"

#include <algorithm>
#include <mutex>

#include "src/base/logging.h"
#include "src/base/stopwatch.h"
#include "src/img/resize.h"

namespace percival {

namespace {

// Draws the intersection of `item` with `tile_bounds` into the framebuffer.
// `frame` is the decoded (possibly cleared/blocked) image for kImage items.
void DrawItemInTile(Bitmap& framebuffer, const DisplayItem& item, const Rect& tile_bounds,
                    const Bitmap* frame) {
  const int x0 = std::max(item.rect.x, tile_bounds.x);
  const int y0 = std::max(item.rect.y, tile_bounds.y);
  const int x1 = std::min(item.rect.Right(), tile_bounds.Right());
  const int y1 = std::min(item.rect.Bottom(), tile_bounds.Bottom());
  if (x0 >= x1 || y0 >= y1) {
    return;
  }
  switch (item.kind) {
    case DisplayItemKind::kColorRect:
      FillRect(framebuffer, Rect{x0, y0, x1 - x0, y1 - y0}, item.color);
      break;
    case DisplayItemKind::kTextBlock: {
      // Text renders as thin ink lines to approximate glyph coverage.
      for (int y = y0; y < y1; ++y) {
        if ((y - item.rect.y) % 4 < 2) {
          FillRect(framebuffer, Rect{x0, y, x1 - x0, 1}, item.color);
        }
      }
      break;
    }
    case DisplayItemKind::kImage: {
      if (frame == nullptr || frame->empty()) {
        return;
      }
      // Nearest scaling from image space to the layout rect.
      for (int y = y0; y < y1; ++y) {
        const int sy = std::clamp(
            (y - item.rect.y) * frame->height() / std::max(1, item.rect.h), 0,
            frame->height() - 1);
        for (int x = x0; x < x1; ++x) {
          const int sx = std::clamp(
              (x - item.rect.x) * frame->width() / std::max(1, item.rect.w), 0,
              frame->width() - 1);
          const Color c = frame->GetPixel(sx, sy);
          if (c.a > 0) {
            framebuffer.SetPixel(x, y, c);
          }
        }
      }
      break;
    }
  }
}

}  // namespace

RasterResult RasterizeDisplayList(const DisplayList& display_list, int width, int height,
                                  ImageDecodeCache& cache, const RasterConfig& config) {
  PCHECK_GT(config.tile_size, 0);
  RasterResult result;
  result.framebuffer = Bitmap(std::max(width, 1), std::max(height, 1),
                              Color{255, 255, 255, 255});

  const int tiles_x = (result.framebuffer.width() + config.tile_size - 1) / config.tile_size;
  const int tiles_y = (result.framebuffer.height() + config.tile_size - 1) / config.tile_size;
  result.tiles = tiles_x * tiles_y;
  result.tile_cpu_ms.assign(static_cast<size_t>(result.tiles), 0.0);

  std::mutex framebuffer_mutex;
  ThreadPool pool(config.raster_threads);
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const int tile_index = ty * tiles_x + tx;
      const Rect tile_bounds{tx * config.tile_size, ty * config.tile_size, config.tile_size,
                             config.tile_size};
      pool.Submit([&, tile_bounds, tile_index] {
        Stopwatch tile_timer;
        for (const DisplayItem& item : display_list) {
          if (!item.rect.Intersects(tile_bounds)) {
            continue;
          }
          const Bitmap* frame = nullptr;
          if (item.kind == DisplayItemKind::kImage) {
            DeferredImageDecoder* decoder = cache.Find(item.image_url);
            if (decoder == nullptr) {
              continue;  // Resource blocked by the filter list or missing.
            }
            // First toucher decodes (and classifies); others reuse.
            const DecodedImage& decoded = decoder->DecodeOnce(config.interceptor);
            if (decoded.decode_failed || decoded.frames.empty()) {
              continue;
            }
            frame = &decoded.frames[0];
          }
          std::lock_guard<std::mutex> lock(framebuffer_mutex);
          DrawItemInTile(result.framebuffer, item, tile_bounds, frame);
        }
        result.tile_cpu_ms[static_cast<size_t>(tile_index)] = tile_timer.ElapsedMs();
      });
    }
  }
  pool.Wait();
  return result;
}

}  // namespace percival
