#include "src/renderer/renderer.h"

#include <algorithm>
#include <sstream>

#include "src/base/logging.h"
#include "src/renderer/display_list.h"
#include "src/renderer/html_parser.h"
#include "src/renderer/layout.h"
#include "src/renderer/raster.h"

namespace percival {

namespace {

// Virtual-clock cost constants. These are arbitrary but fixed; the overhead
// experiments report ratios and deltas, which do not depend on the choice.
constexpr double kParseMsPerKb = 0.08;
constexpr double kScriptMsPerExec = 0.4;

struct LoadState {
  const WebPage* page = nullptr;
  const RenderOptions* options = nullptr;
  ImageDecodeCache* cache = nullptr;
  RenderStats* stats = nullptr;
  std::vector<ImageOutcome>* outcomes = nullptr;
  std::string top_host;
  double fetch_critical_path_ms = 0.0;
  double script_ms = 0.0;
};

// Returns the simulated fetch latency, or a negative value when the filter
// list blocks the request (Brave-style: blocked requests never hit the
// network, saving their latency entirely).
double FetchResource(LoadState& state, const std::string& url, ResourceType type,
                     const WebResource** out_resource) {
  *out_resource = state.page->FindResource(url);
  ++state.stats->requests;
  if (*out_resource == nullptr) {
    return -1.0;
  }
  if (state.options->filter != nullptr) {
    RequestContext request;
    request.url = Url::Parse(url);
    request.page_host = state.top_host;
    request.type = type;
    if (state.options->filter->ShouldBlockRequest(request).blocked) {
      ++state.stats->requests_blocked_by_filter;
      *out_resource = nullptr;
      return -1.0;
    }
  }
  return (*out_resource)->latency_ms;
}

// Loads every subresource reachable from `node`'s subtree: images, CSS
// background images, iframes (recursively) and scripts (which may inject
// further images). `base_latency_ms` is the virtual time at which this
// subtree's HTML became available.
void LoadSubtree(LoadState& state, DomNode& node, double base_latency_ms) {
  // Cosmetic filtering happens before resource loading so hidden elements
  // do not fetch their subresources (matches ABP element hiding).
  if (state.options->filter != nullptr) {
    const BlockDecision decision =
        state.options->filter->ShouldHideElement(state.top_host, node.Descriptor());
    if (decision.blocked) {
      node.hidden_by_filter = true;
      ++state.stats->elements_hidden_by_filter;
      return;
    }
  }

  // Element memoization (§6): if a previous visit blocked this element's
  // image, hide the whole container now — image, caption and all — so no
  // dangling text remains. Applied to the image's parent when one exists.
  if (state.options->remembered_blocked_urls != nullptr && node.tag() == "img" &&
      node.HasAttr("src") &&
      state.options->remembered_blocked_urls->count(node.GetAttr("src")) > 0) {
    DomNode* container = node.parent() != nullptr ? node.parent() : &node;
    if (!container->hidden_by_filter) {
      container->hidden_by_filter = true;
      ++state.stats->elements_hidden_by_memo;
    }
    node.hidden_by_filter = true;
    return;
  }

  auto load_image = [&](const std::string& url) {
    const WebResource* resource = nullptr;
    const double latency = FetchResource(state, url, ResourceType::kImage, &resource);
    ImageOutcome outcome;
    outcome.url = url;
    const WebResource* truth = state.page->FindResource(url);
    outcome.is_ad = truth != nullptr && truth->is_ad;
    if (resource == nullptr) {
      outcome.fetched = false;
      state.outcomes->push_back(outcome);
      return;
    }
    outcome.fetched = true;
    state.outcomes->push_back(outcome);
    state.cache->Register(url, resource->bytes);
    state.fetch_critical_path_ms =
        std::max(state.fetch_critical_path_ms, base_latency_ms + latency);
  };

  if (node.tag() == "img" && node.HasAttr("src")) {
    load_image(node.GetAttr("src"));
  }
  if (node.HasAttr("bgimg")) {
    load_image(node.GetAttr("bgimg"));
  }

  if (node.tag() == "iframe" && node.HasAttr("src")) {
    const WebResource* resource = nullptr;
    const double latency =
        FetchResource(state, node.GetAttr("src"), ResourceType::kSubdocument, &resource);
    if (resource != nullptr) {
      ++state.stats->iframes_rendered;
      const std::string sub_html(resource->bytes.begin(), resource->bytes.end());
      DomTree sub_document = ParseHtml(sub_html);
      // Graft the sub-document under the iframe so that layout and painting
      // include it; its own subresources load after the iframe HTML arrives.
      DomNode* grafted = node.AddChild(std::move(sub_document));
      for (auto& child : grafted->children()) {
        LoadSubtree(state, *child, base_latency_ms + latency);
      }
      state.fetch_critical_path_ms =
          std::max(state.fetch_critical_path_ms, base_latency_ms + latency);
    }
  }

  if (node.tag() == "script" && node.HasAttr("src")) {
    const WebResource* resource = nullptr;
    const double latency =
        FetchResource(state, node.GetAttr("src"), ResourceType::kScript, &resource);
    if (resource != nullptr) {
      ++state.stats->scripts_executed;
      state.script_ms += kScriptMsPerExec;
      // "Execute" the script: lines of the form
      //   inject-img <url> <width> <height>
      // append an <img> to the script's parent — the JS-inserted-ad path.
      const std::string body(resource->bytes.begin(), resource->bytes.end());
      std::istringstream lines(body);
      std::string op;
      while (lines >> op) {
        if (op == "inject-img") {
          std::string url;
          int width = 0;
          int height = 0;
          if (!(lines >> url >> width >> height)) {
            break;
          }
          auto img = std::make_unique<DomNode>("img");
          img->SetAttr("src", url);
          img->SetAttr("width", std::to_string(width));
          img->SetAttr("height", std::to_string(height));
          DomNode* parent = node.parent() != nullptr ? node.parent() : &node;
          DomNode* added = parent->AddChild(std::move(img));
          LoadSubtree(state, *added, base_latency_ms + latency);
        }
      }
      state.fetch_critical_path_ms =
          std::max(state.fetch_critical_path_ms, base_latency_ms + latency);
    }
  }

  // Recurse into static children. Children appended during script execution
  // were already loaded above; iterate by index to tolerate appends.
  for (size_t i = 0; i < node.children().size(); ++i) {
    DomNode& child = *node.children()[i];
    if (child.tag() != "#text") {
      LoadSubtree(state, child, base_latency_ms);
    }
  }
}

// Greedy makespan of tile costs over `workers` parallel raster threads.
double RasterMakespanMs(const std::vector<double>& tile_cpu_ms, int workers) {
  std::vector<double> load(static_cast<size_t>(std::max(workers, 1)), 0.0);
  for (double cost : tile_cpu_ms) {
    auto it = std::min_element(load.begin(), load.end());
    *it += cost;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

RenderResult RenderPage(const WebPage& page, const RenderOptions& options) {
  RenderResult result;
  ImageDecodeCache cache;

  // domLoading: virtual time zero.
  result.metrics.dom_loading = 0.0;
  result.metrics.parse_ms = kParseMsPerKb * static_cast<double>(page.html.size()) / 1024.0;

  DomTree dom = ParseHtml(page.html);

  LoadState state;
  state.page = &page;
  state.options = &options;
  state.cache = &cache;
  state.stats = &result.stats;
  state.outcomes = &result.image_outcomes;
  state.top_host = Url::Parse(page.url).host;
  LoadSubtree(state, *dom, 0.0);
  result.metrics.fetch_ms = state.fetch_critical_path_ms;
  result.metrics.script_ms = state.script_ms;

  std::unique_ptr<LayoutBox> layout = ComputeLayout(*dom, options.viewport_width);
  DisplayList display_list = BuildDisplayList(*layout);

  const int height = std::max(DocumentHeight(*layout), 1);
  RasterConfig raster_config;
  raster_config.tile_size = options.tile_size;
  raster_config.raster_threads = options.raster_threads;
  raster_config.interceptor = options.interceptor;

  if (options.render_framebuffer) {
    RasterResult raster =
        RasterizeDisplayList(display_list, options.viewport_width, height, cache, raster_config);
    result.framebuffer = std::move(raster.framebuffer);
    result.metrics.raster_ms = RasterMakespanMs(raster.tile_cpu_ms, options.raster_threads);
  } else {
    // Fast path: decode + classify every registered image without painting.
    double total_cpu = 0.0;
    for (const ImageOutcome& outcome : result.image_outcomes) {
      if (!outcome.fetched) {
        continue;
      }
      DeferredImageDecoder* decoder = cache.Find(outcome.url);
      if (decoder != nullptr) {
        const DecodedImage& decoded = decoder->DecodeOnce(options.interceptor);
        total_cpu += decoded.decode_cpu_ms + decoded.classify_cpu_ms;
      }
    }
    result.metrics.raster_ms = total_cpu / std::max(options.raster_threads, 1);
  }

  const ImageDecodeCache::Stats decode_stats = cache.CollectStats();
  result.stats.images_decoded = decode_stats.images_decoded;
  result.stats.frames_decoded = decode_stats.frames_decoded;
  result.stats.frames_blocked = decode_stats.frames_blocked;
  result.stats.decode_cpu_ms = decode_stats.decode_cpu_ms;
  result.stats.classify_cpu_ms = decode_stats.classify_cpu_ms;

  // Join per-image outcomes with decode/block results.
  for (ImageOutcome& outcome : result.image_outcomes) {
    DeferredImageDecoder* decoder = cache.Find(outcome.url);
    if (decoder != nullptr && decoder->decoded()) {
      const DecodedImage& decoded = decoder->DecodeOnce(nullptr);
      outcome.decoded = !decoded.decode_failed;
      outcome.blocked_by_percival = decoded.frames_blocked > 0;
    }
  }

  result.metrics.dom_complete = result.metrics.parse_ms + result.metrics.fetch_ms +
                                result.metrics.script_ms + result.metrics.raster_ms;
  return result;
}

}  // namespace percival
