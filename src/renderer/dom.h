// DOM tree — the renderer's first intermediate representation (§2.1).
#ifndef PERCIVAL_SRC_RENDERER_DOM_H_
#define PERCIVAL_SRC_RENDERER_DOM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/filter/cosmetic.h"

namespace percival {

class DomNode {
 public:
  explicit DomNode(std::string tag) : tag_(std::move(tag)) {}

  const std::string& tag() const { return tag_; }

  // Attribute access. Missing attributes read as "" / fallback.
  void SetAttr(const std::string& name, const std::string& value) { attrs_[name] = value; }
  std::string GetAttr(const std::string& name) const;
  int GetIntAttr(const std::string& name, int fallback) const;
  bool HasAttr(const std::string& name) const { return attrs_.count(name) > 0; }

  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  DomNode* AddChild(std::unique_ptr<DomNode> child);
  const std::vector<std::unique_ptr<DomNode>>& children() const { return children_; }
  DomNode* parent() const { return parent_; }

  // Pre-order traversal over this node and all descendants.
  void Visit(const std::function<void(DomNode&)>& fn);
  void Visit(const std::function<void(const DomNode&)>& fn) const;

  // Total node count in this subtree (resource-exhaustion experiments).
  int SubtreeSize() const;

  // Element descriptor for cosmetic-rule matching.
  ElementDescriptor Descriptor() const;

  // Marks set by the render pipeline.
  bool hidden_by_filter = false;

 private:
  std::string tag_;
  std::map<std::string, std::string> attrs_;
  std::string text_;
  DomNode* parent_ = nullptr;
  std::vector<std::unique_ptr<DomNode>> children_;
};

using DomTree = std::unique_ptr<DomNode>;

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_DOM_H_
