// Layout tree construction (§2.1: "the layout-tree includes the layout
// information of all the elements of the web page").
//
// Layout model: block elements stack vertically inside their parent;
// elements with explicit `x`/`y` attributes are absolutely positioned
// (used for right-column ads); `width`/`height` attributes set the box
// size, otherwise width fills the parent and height wraps the children.
#ifndef PERCIVAL_SRC_RENDERER_LAYOUT_H_
#define PERCIVAL_SRC_RENDERER_LAYOUT_H_

#include <memory>
#include <vector>

#include "src/img/draw.h"
#include "src/renderer/dom.h"

namespace percival {

struct LayoutBox {
  const DomNode* node = nullptr;
  Rect rect;
  std::vector<std::unique_ptr<LayoutBox>> children;
};

// Builds the layout tree for `root` within a viewport of the given width.
// Nodes with hidden_by_filter set (cosmetic filtering) get zero-size boxes
// and do not contribute to flow.
std::unique_ptr<LayoutBox> ComputeLayout(const DomNode& root, int viewport_width);

// Total document height (bottom of the lowest box).
int DocumentHeight(const LayoutBox& root);

}  // namespace percival

#endif  // PERCIVAL_SRC_RENDERER_LAYOUT_H_
