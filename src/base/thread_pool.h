// Fixed-size worker pool modelled on Blink's raster worker threads.
//
// The renderer submits raster tasks here; PERCIVAL's classifier runs inside
// these workers, which is how the paper achieves per-image parallel
// classification ("multiple raster threads each rasterizing different raster
// tasks in parallel", §3.3).
#ifndef PERCIVAL_SRC_BASE_THREAD_POOL_H_
#define PERCIVAL_SRC_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace percival {

class ThreadPool {
 public:
  // Creates `num_threads` workers (must be >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks may be submitted from any thread, including from
  // inside another task.
  void Submit(std::function<void()> task);

  // Blocks until all submitted tasks (including nested submissions) have run.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // True when called from one of this pool's worker threads. Kernels use it
  // to fall back to serial execution instead of fanning out from inside a
  // worker (a nested blocking ParallelFor could otherwise stall the pool).
  bool IsWorkerThread() const;

  // Runs `fn(i)` for i in [0, count) across the pool and waits. The calling
  // thread participates, and the wait covers only this call's iterations
  // (concurrent Submit() traffic does not extend it). Safe to call from a
  // worker thread: it then runs inline on the caller.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_BASE_THREAD_POOL_H_
