// Wall-clock stopwatch used for render-time and classification latency
// measurements (Figures 8, 14, 15).
#ifndef PERCIVAL_SRC_BASE_STOPWATCH_H_
#define PERCIVAL_SRC_BASE_STOPWATCH_H_

#include <chrono>

namespace percival {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  }

  // Elapsed time in microseconds.
  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_BASE_STOPWATCH_H_
