#include "src/base/faultpoint.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace percival {
namespace faultpoint {

namespace internal {
std::atomic<int64_t> g_armed_points{0};
}  // namespace internal

namespace {

struct FaultState {
  bool armed = false;
  FaultSpec spec;
  int64_t remaining = -1;  // firings left; < 0 = unlimited
  int64_t fires = 0;       // cumulative, survives disarm
};

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::unordered_map<std::string, FaultState>& Registry() {
  static std::unordered_map<std::string, FaultState> registry;
  return registry;
}

}  // namespace

void Arm(const std::string& name, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  FaultState& state = Registry()[name];
  if (!state.armed) {
    internal::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.spec = spec;
  state.remaining = spec.count;
}

void Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  if (it != Registry().end() && it->second.armed) {
    it->second.armed = false;
    internal::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [name, state] : Registry()) {
    if (state.armed) {
      state.armed = false;
      internal::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool IsArmed(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  return it != Registry().end() && it->second.armed;
}

int64_t FireCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.fires;
}

namespace internal {

bool FireSlow(const char* name) {
  double delay_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(name);
    if (it == Registry().end() || !it->second.armed) {
      return false;
    }
    FaultState& state = it->second;
    if (state.remaining == 0) {
      // A finite count exhausted by a concurrent firing between the fast
      // path and this lock: treat as disarmed.
      state.armed = false;
      g_armed_points.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    if (state.remaining > 0 && --state.remaining == 0) {
      state.armed = false;  // this call consumes the last firing
      g_armed_points.fetch_sub(1, std::memory_order_relaxed);
    }
    ++state.fires;
    delay_ms = state.spec.delay_ms;
  }
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
  }
  return true;
}

}  // namespace internal

}  // namespace faultpoint
}  // namespace percival
