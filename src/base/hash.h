// FNV-1a based hashing utilities.
//
// Used for image-buffer memoization keys (AdClassifier cache), dataset
// deduplication, and stable derived seeds.
#ifndef PERCIVAL_SRC_BASE_HASH_H_
#define PERCIVAL_SRC_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace percival {

// 64-bit FNV-1a over an arbitrary byte range.
uint64_t HashBytes(const void* data, size_t size);

// FNV-1a with a caller-chosen offset basis: an independent second hash over
// the same bytes. Pairing it with HashBytes gives an effective 128-bit key
// (the AsyncAdClassifier memo uses it to verify that a 64-bit hash match is
// really the same payload, not a collision).
uint64_t HashBytesSeeded(const void* data, size_t size, uint64_t seed);

// Convenience overloads.
uint64_t HashString(std::string_view text);
uint64_t HashU8(const std::vector<uint8_t>& bytes);

// Combines two hashes (boost::hash_combine style).
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace percival

#endif  // PERCIVAL_SRC_BASE_HASH_H_
