// Minimal logging and assertion macros used across the PERCIVAL codebase.
//
// PCHECK(cond) aborts with a message when `cond` is false; it is used for
// programmer-error invariants (never for recoverable conditions).
// PLOG(msg) writes a timestamped line to stderr.
#ifndef PERCIVAL_SRC_BASE_LOGGING_H_
#define PERCIVAL_SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace percival {

// Terminates the process after printing `message` together with the source
// location of the failed check. Declared out-of-line so the macro body stays
// small.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

// Writes one log line to stderr (thread-safe at the line level).
void LogLine(const std::string& message);

namespace logging_internal {

// Accumulates a message via operator<< and triggers CheckFailed on
// destruction. Used only by the PCHECK macro.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "PCHECK failed: " << condition << " ";
  }
  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace logging_internal

#define PCHECK(condition)                                                       \
  if (condition) {                                                              \
  } else                                                                        \
    ::percival::logging_internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define PCHECK_EQ(a, b) PCHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define PCHECK_NE(a, b) PCHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define PCHECK_LT(a, b) PCHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define PCHECK_LE(a, b) PCHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define PCHECK_GT(a, b) PCHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define PCHECK_GE(a, b) PCHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

}  // namespace percival

#endif  // PERCIVAL_SRC_BASE_LOGGING_H_
