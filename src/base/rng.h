// Deterministic random number generation.
//
// Every stochastic component in the reproduction (dataset generators, weight
// init, crawler link selection, latency models) draws from an explicitly
// seeded SplitMix64-based generator so experiments are bit-reproducible.
#ifndef PERCIVAL_SRC_BASE_RNG_H_
#define PERCIVAL_SRC_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace percival {

// SplitMix64 generator: tiny state, excellent statistical quality for
// simulation purposes, and trivially seedable / forkable.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Bernoulli with probability `p`.
  bool NextBool(double p = 0.5);

  // Returns an independent generator derived from this one; consuming the
  // child does not perturb the parent beyond this single draw.
  Rng Fork();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Picks one element uniformly. Container must be non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<size_t>(NextBelow(items.size()))];
  }

 private:
  uint64_t state_;
};

}  // namespace percival

#endif  // PERCIVAL_SRC_BASE_RNG_H_
