#include "src/base/rng.h"

#include <cmath>

#include "src/base/logging.h"

namespace percival {

uint64_t Rng::NextU64() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  PCHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias for large bounds.
  uint64_t threshold = (~bound + 1) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int Rng::NextInt(int lo, int hi) {
  PCHECK_LE(lo, hi);
  return lo + static_cast<int>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace percival
