#include "src/base/hash.h"

namespace percival {

uint64_t HashBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t HashBytesSeeded(const void* data, size_t size, uint64_t seed) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  // Mix the seed into the FNV offset basis so seed 0 still differs from
  // the unseeded HashBytes stream.
  uint64_t hash = 0xCBF29CE484222325ULL ^ (seed + 0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t HashString(std::string_view text) { return HashBytes(text.data(), text.size()); }

uint64_t HashU8(const std::vector<uint8_t>& bytes) { return HashBytes(bytes.data(), bytes.size()); }

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace percival
