// Named fault points for deterministic failure-path testing.
//
// A fault point is a compiled-in hook on a production code path ("what if
// the forward pass stalls here", "what if this allocation fails") that a
// test or bench arms by name to force the failure deterministically. The
// serving robustness suite drives every rung of the classifier's
// degradation ladder through these instead of relying on real overload.
//
// Design constraints:
//   * Always compiled — the exact binary that ships is the one under test;
//     there is no "fault build" whose behavior could diverge.
//   * Zero-cost when unarmed — the hot-path check is one relaxed atomic
//     load of a process-wide armed counter; the registry (mutex + map) is
//     only touched while at least one fault is armed anywhere.
//   * Thread-safe — faults can be armed/disarmed while other threads run
//     through the instrumented paths; finite trigger counts are consumed
//     atomically (exactly N firings, no double-firing across threads).
#ifndef PERCIVAL_SRC_BASE_FAULTPOINT_H_
#define PERCIVAL_SRC_BASE_FAULTPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace percival {
namespace faultpoint {

// Canonical fault-point names (keep in sync with the README's serving
// robustness section). Using the constants instead of string literals keeps
// arm sites and check sites from drifting apart.
inline constexpr const char kSlowForward[] = "nn.forward.slow";
inline constexpr const char kArenaAllocFail[] = "nn.arena.alloc_fail";
inline constexpr const char kArtifactCorrupt[] = "serialize.artifact.corrupt";
inline constexpr const char kQueueSaturate[] = "classifier.queue.saturate";
// Fails a shard's weight reload before any file IO happens — distinct from
// kArtifactCorrupt (which corrupts the bytes of EVERY read) so a test can
// fail exactly one tenant's reload while the other shards reload cleanly.
inline constexpr const char kShardReloadFail[] = "serve.shard.reload_fail";

struct FaultSpec {
  // Number of firings before the fault auto-disarms; < 0 fires until
  // Disarm().
  int64_t count = -1;
  // Milliseconds to sleep when the fault fires (the "forced slow" faults).
  // The sleep happens outside the registry lock, so concurrent fault checks
  // on other names are not serialized behind it.
  double delay_ms = 0.0;
};

// Arms `name`. Re-arming an armed fault replaces its spec (the cumulative
// fire count is preserved).
void Arm(const std::string& name, const FaultSpec& spec = FaultSpec{});

// Disarms `name` (no-op when not armed).
void Disarm(const std::string& name);

// Disarms everything; tests call this in teardown so a failed test cannot
// leak an armed fault into the next one.
void DisarmAll();

// True while `name` is armed with remaining firings.
bool IsArmed(const std::string& name);

// Cumulative number of times `name` has fired since process start (survives
// disarm and re-arm).
int64_t FireCount(const std::string& name);

namespace internal {
// Process-wide count of armed fault points; the fast path reads only this.
extern std::atomic<int64_t> g_armed_points;
bool FireSlow(const char* name);
}  // namespace internal

// The instrumented-site check: returns true (after applying the spec's
// delay and consuming one firing) when `name` is armed. This is the only
// call production code makes; everything else is test-side API.
inline bool ShouldFire(const char* name) {
  if (internal::g_armed_points.load(std::memory_order_relaxed) == 0) {
    return false;  // unarmed fast path: one relaxed load, no branch history
  }
  return internal::FireSlow(name);
}

}  // namespace faultpoint
}  // namespace percival

#endif  // PERCIVAL_SRC_BASE_FAULTPOINT_H_
