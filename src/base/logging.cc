#include "src/base/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace percival {

namespace {
std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}
}  // namespace

void CheckFailed(const char* file, int line, const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%s:%d] %s\n", file, line, message.c_str());
    std::fflush(stderr);
  }
  std::abort();
}

void LogLine(const std::string& message) {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[percival] %s\n", message.c_str());
}

}  // namespace percival
