#include "src/base/thread_pool.h"

#include <atomic>

#include "src/base/logging.h"

namespace percival {

namespace {
// Set for the lifetime of each worker thread; lets IsWorkerThread() answer
// without any synchronization.
thread_local const ThreadPool* tls_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  PCHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PCHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::IsWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) {
    return;
  }
  // From inside a worker (or with nothing to fan out to) run inline: every
  // other worker may be blocked in a ParallelFor of its own, so queueing and
  // waiting here could leave no thread free to make progress.
  if (count == 1 || IsWorkerThread() || num_threads() <= 1) {
    for (int i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }

  // Work-stealing loop shared by the caller and the helpers. The latch
  // counts completed *iterations*, not helper tasks: once every iteration
  // has run, the caller returns even if some helper tasks are still queued
  // behind unrelated work (they find the range drained and exit). That also
  // means a caller that claims every iteration itself never blocks on the
  // pool — so fanning out while holding a lock the workers contend on
  // cannot deadlock. State (including a copy of fn) is shared, because a
  // straggler helper may outlive this frame.
  struct State {
    std::function<void(int)> fn;
    int count = 0;
    std::atomic<int> next{0};
    std::mutex mutex;
    std::condition_variable done;
    int completed = 0;
  };
  auto state = std::make_shared<State>();
  state->fn = fn;
  state->count = count;
  auto drain = [](const std::shared_ptr<State>& s) {
    int i;
    int ran = 0;
    while ((i = s->next.fetch_add(1)) < s->count) {
      s->fn(i);
      ++ran;
    }
    if (ran > 0) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->completed += ran;
      if (s->completed == s->count) {
        s->done.notify_all();
      }
    }
  };

  const int helpers = std::min(num_threads(), count) - 1;
  for (int h = 0; h < helpers; ++h) {
    Submit([state, drain] { drain(state); });
  }
  drain(state);
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&state] { return state->completed == state->count; });
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace percival
